//! FastTrack-style vector-clock race detection over `cobra_pb::trace`
//! event logs.
//!
//! The detector consumes the flat event stream captured from an
//! instrumented binning/accumulate run and checks the three properties the
//! paper's "unordered parallelism suffices" argument rests on:
//!
//! 1. **Routing**: every Binning-phase tuple lands in the bin that owns its
//!    key (`key >> shift == bin`) — the invariant that makes bins disjoint.
//! 2. **Ownership**: every Accumulate-phase write touches a key owned by
//!    the bin being replayed — the invariant that makes Accumulate safe
//!    without atomics.
//! 3. **Happens-before**: no two threads write the same output key without
//!    an ordering edge between them. Edges come only from the fork/join
//!    token protocol ([`cobra_pb::trace::Event::Fork`] /
//!    [`ChildStart`](cobra_pb::trace::Event::ChildStart) /
//!    [`Join`](cobra_pb::trace::Event::Join)); this is the classic
//!    FastTrack *write-write* check with a last-write epoch per key.
//!
//! Routing and ownership are what *imply* race freedom for a correct PB
//! run, so on a healthy trace all three hold; a seeded cross-bin tuple
//! (see `fixtures`) trips ownership *and* shows up as a real vector-clock
//! race between the two accumulate workers that share the key.

use cobra_pb::trace::Event;
use std::collections::{HashMap, HashSet};

/// One defect found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Two threads wrote output key `key` with no happens-before edge.
    WriteRace {
        /// The contended output key.
        key: u32,
        /// Trace thread id of the earlier (logged-first) writer.
        first_thread: u32,
        /// Trace thread id of the later writer.
        second_thread: u32,
    },
    /// An Accumulate write to a key outside the replayed bin's range.
    OwnershipViolation {
        /// Writing thread.
        thread: u32,
        /// Bin being replayed.
        bin: u32,
        /// The out-of-range key.
        key: u32,
        /// log2 bin range in force.
        shift: u32,
    },
    /// A Binning write routed a tuple into a bin that does not own its key.
    RoutingViolation {
        /// Writing thread.
        thread: u32,
        /// Bin the tuple was appended to.
        bin: u32,
        /// The mis-routed key.
        key: u32,
        /// log2 bin range in force.
        shift: u32,
    },
    /// A `ChildStart` with no preceding `Fork` of the same token: the
    /// thread's work cannot be ordered against its parent.
    OrphanChild {
        /// The unparented thread.
        thread: u32,
        /// The unmatched token.
        token: u64,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::WriteRace {
                key,
                first_thread,
                second_thread,
            } => write!(
                f,
                "write-write race on key {key}: threads {first_thread} and \
                 {second_thread} are unordered"
            ),
            Finding::OwnershipViolation {
                thread,
                bin,
                key,
                shift,
            } => write!(
                f,
                "ownership violation: thread {thread} replaying bin {bin} \
                 wrote key {key} (owner bin {})",
                key >> shift
            ),
            Finding::RoutingViolation {
                thread,
                bin,
                key,
                shift,
            } => write!(
                f,
                "routing violation: thread {thread} binned key {key} into \
                 bin {bin} (owner bin {})",
                key >> shift
            ),
            Finding::OrphanChild { thread, token } => write!(
                f,
                "orphan child: thread {thread} started with unmatched fork \
                 token {token}"
            ),
        }
    }
}

/// Result of checking one trace.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Defects, deduplicated per key / per site.
    pub findings: Vec<Finding>,
    /// Total events processed.
    pub events: usize,
    /// Distinct threads observed.
    pub threads: usize,
    /// Binning-phase writes checked.
    pub bin_writes: usize,
    /// Accumulate-phase writes checked.
    pub acc_writes: usize,
}

impl RaceReport {
    /// Whether the trace is free of defects.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Per-thread vector clock, grown on demand.
#[derive(Debug, Clone, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn bump(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn merge_from(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Replays `events` through the vector-clock state machine and reports
/// every routing, ownership and happens-before defect.
pub fn check_trace(events: &[Event]) -> RaceReport {
    let mut report = RaceReport {
        events: events.len(),
        ..RaceReport::default()
    };
    // Raw trace thread ids are process-global; densify them per trace.
    let mut dense: HashMap<u32, usize> = HashMap::new();
    let mut raw_ids: Vec<u32> = Vec::new();
    let mut clocks: Vec<VClock> = Vec::new();
    let mut fork_snapshots: HashMap<u64, VClock> = HashMap::new();
    let mut token_child: HashMap<u64, usize> = HashMap::new();
    // FastTrack last-write epoch per output key: (writer, writer clock).
    let mut last_write: HashMap<u32, (usize, u64)> = HashMap::new();
    let mut raced_keys: HashSet<u32> = HashSet::new();
    let mut bad_routes: HashSet<(u32, u32)> = HashSet::new();
    let mut bad_owners: HashSet<(u32, u32)> = HashSet::new();

    let idx_of = |tid: u32,
                  clocks: &mut Vec<VClock>,
                  dense: &mut HashMap<u32, usize>,
                  raw_ids: &mut Vec<u32>| {
        *dense.entry(tid).or_insert_with(|| {
            let i = clocks.len();
            let mut vc = VClock::default();
            vc.bump(i);
            clocks.push(vc);
            raw_ids.push(tid);
            i
        })
    };

    for ev in events {
        match *ev {
            Event::Fork { parent, token } => {
                let p = idx_of(parent, &mut clocks, &mut dense, &mut raw_ids);
                fork_snapshots.insert(token, clocks[p].clone());
                // Advance the parent past the fork so its later work is
                // not ordered before the child by accident.
                clocks[p].bump(p);
            }
            Event::ChildStart { thread, token } => {
                let c = idx_of(thread, &mut clocks, &mut dense, &mut raw_ids);
                match fork_snapshots.remove(&token) {
                    Some(snap) => clocks[c].merge_from(&snap),
                    None => report.findings.push(Finding::OrphanChild { thread, token }),
                }
                token_child.insert(token, c);
                clocks[c].bump(c);
            }
            Event::Join { parent, token } => {
                let p = idx_of(parent, &mut clocks, &mut dense, &mut raw_ids);
                if let Some(&c) = token_child.get(&token) {
                    let child_vc = clocks[c].clone();
                    clocks[p].merge_from(&child_vc);
                }
                clocks[p].bump(p);
            }
            Event::BinWrite {
                thread,
                bin,
                key,
                shift,
            } => {
                report.bin_writes += 1;
                // Binning writes go to thread-private C-Buffers — no race
                // check needed, but count the thread in the report.
                idx_of(thread, &mut clocks, &mut dense, &mut raw_ids);
                if key >> shift != bin && bad_routes.insert((bin, key)) {
                    report.findings.push(Finding::RoutingViolation {
                        thread,
                        bin,
                        key,
                        shift,
                    });
                }
            }
            Event::BinFlush { .. } => {}
            Event::AccWrite {
                thread,
                bin,
                key,
                shift,
            } => {
                report.acc_writes += 1;
                if key >> shift != bin && bad_owners.insert((bin, key)) {
                    report.findings.push(Finding::OwnershipViolation {
                        thread,
                        bin,
                        key,
                        shift,
                    });
                }
                let t = idx_of(thread, &mut clocks, &mut dense, &mut raw_ids);
                if let Some(&(u, at)) = last_write.get(&key) {
                    // Unordered iff the previous write's epoch is not
                    // covered by this thread's view of the writer.
                    if u != t && at > clocks[t].get(u) && raced_keys.insert(key) {
                        report.findings.push(Finding::WriteRace {
                            key,
                            first_thread: raw_ids[u],
                            second_thread: thread,
                        });
                    }
                }
                last_write.insert(key, (t, clocks[t].get(t)));
            }
        }
    }
    report.threads = clocks.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_writes_are_ordered() {
        let events = vec![
            Event::AccWrite {
                thread: 0,
                bin: 0,
                key: 5,
                shift: 4,
            },
            Event::AccWrite {
                thread: 0,
                bin: 0,
                key: 5,
                shift: 4,
            },
        ];
        assert!(check_trace(&events).is_clean());
    }

    #[test]
    fn sibling_writes_to_same_key_race() {
        // Parent forks two children; both write key 5; no join between.
        let events = vec![
            Event::Fork {
                parent: 0,
                token: 1,
            },
            Event::Fork {
                parent: 0,
                token: 2,
            },
            Event::ChildStart {
                thread: 1,
                token: 1,
            },
            Event::ChildStart {
                thread: 2,
                token: 2,
            },
            Event::AccWrite {
                thread: 1,
                bin: 0,
                key: 5,
                shift: 4,
            },
            Event::AccWrite {
                thread: 2,
                bin: 0,
                key: 5,
                shift: 4,
            },
        ];
        let report = check_trace(&events);
        assert!(matches!(
            report.findings.as_slice(),
            [Finding::WriteRace { key: 5, .. }]
        ));
    }

    #[test]
    fn join_orders_parent_after_child() {
        // Child writes key 5, parent joins, then parent writes key 5:
        // ordered, no race.
        let events = vec![
            Event::Fork {
                parent: 0,
                token: 1,
            },
            Event::ChildStart {
                thread: 1,
                token: 1,
            },
            Event::AccWrite {
                thread: 1,
                bin: 0,
                key: 5,
                shift: 4,
            },
            Event::Join {
                parent: 0,
                token: 1,
            },
            Event::AccWrite {
                thread: 0,
                bin: 0,
                key: 5,
                shift: 4,
            },
        ];
        assert!(check_trace(&events).is_clean());
    }

    #[test]
    fn fork_chain_transitivity() {
        // t0 forks t1 (writes), joins; then forks t2 (writes): ordered
        // through the parent even though t1 and t2 never met.
        let events = vec![
            Event::Fork {
                parent: 0,
                token: 1,
            },
            Event::ChildStart {
                thread: 1,
                token: 1,
            },
            Event::AccWrite {
                thread: 1,
                bin: 0,
                key: 9,
                shift: 4,
            },
            Event::Join {
                parent: 0,
                token: 1,
            },
            Event::Fork {
                parent: 0,
                token: 2,
            },
            Event::ChildStart {
                thread: 2,
                token: 2,
            },
            Event::AccWrite {
                thread: 2,
                bin: 0,
                key: 9,
                shift: 4,
            },
        ];
        assert!(check_trace(&events).is_clean());
    }

    #[test]
    fn routing_and_ownership_violations_are_flagged() {
        let events = vec![
            Event::BinWrite {
                thread: 0,
                bin: 3,
                key: 5,
                shift: 4,
            },
            Event::AccWrite {
                thread: 0,
                bin: 3,
                key: 5,
                shift: 4,
            },
        ];
        let report = check_trace(&events);
        assert_eq!(report.findings.len(), 2);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::RoutingViolation { key: 5, bin: 3, .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::OwnershipViolation { key: 5, bin: 3, .. })));
    }

    #[test]
    fn orphan_child_is_flagged() {
        let events = vec![Event::ChildStart {
            thread: 7,
            token: 99,
        }];
        let report = check_trace(&events);
        assert!(matches!(
            report.findings.as_slice(),
            [Finding::OrphanChild {
                thread: 7,
                token: 99
            }]
        ));
    }
}
