//! Figure 13c: worst-case DRAM bandwidth waste from context switches —
//! under static way partitioning, other processes evict partially-filled
//! LLC C-Buffer lines every scheduling quantum.

#![forbid(unsafe_code)]

use cobra_bench::{inputs, report, Scale, Table};
use cobra_core::DesConfig;
use cobra_kernels::{run, KernelId, ModeSpec};
use cobra_sim::MachineConfig;

/// Default Linux scheduling quantum, in cycles at 2.66 GHz (~6 ms slice).
const DEFAULT_QUANTUM: u64 = 16_000_000;

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let kernel = KernelId::NeighborPopulate;
    let ni = inputs::representative_input(kernel, scale);
    println!("kernel: {} on {}", kernel.name(), ni.name);

    let mut t = Table::new(
        "Figure 13c: worst-case DRAM bandwidth waste vs scheduling quantum",
        &[
            "quantum (cycles)",
            "context switches",
            "wasted MB",
            "bin-write MB",
            "waste",
        ],
    );
    for divisor in [1u64, 10, 100, 1000] {
        let quantum = (DEFAULT_QUANTUM / divisor).max(1);
        let spec = ModeSpec::Cobra {
            reserved: None,
            des: DesConfig::paper_default(),
            ctx_quantum: Some(quantum),
        };
        let out = run(kernel, &ni.input, &spec, &machine);
        let wr = out.metrics.result.mem.dram_write_bytes;
        // Waste = the gap between line-granular bin writes with forced
        // partial evictions and perfectly packed tuple bytes.
        let packed = ni.input.num_updates(kernel) * kernel.tuple_bytes() as u64;
        let wasted = wr.saturating_sub(packed);
        t.row(vec![
            format!("default/{divisor} ({quantum})"),
            // context switches = run cycles / quantum, observable via waste
            (out.metrics.cycles() / quantum).to_string(),
            format!("{:.2}", wasted as f64 / 1e6),
            format!("{:.2}", wr as f64 / 1e6),
            report::pct(wasted as f64 / wr.max(1) as f64),
        ]);
        eprintln!("[done] quantum/{divisor}");
    }
    t.print();
    t.write_csv("fig13c_ctx_switch");
    println!(
        "\nShape check (paper Fig. 13c): worst-case bandwidth waste stays small\n\
         (<5%) even at 1/100th of the default scheduling quantum, because COBRA's\n\
         fast Binning completes within few quanta."
    );
}
