//! # cobra-serve — a dependency-free network service over cobra-stream
//!
//! This crate turns the [`cobra_stream`] ingest pipeline into a network
//! service using nothing beyond `std::net`:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol (`UPDATE`,
//!   `SEAL`, `QUERY`, `SNAPSHOT`, `STATS`) with total decoders: no byte
//!   sequence a client can send will panic a worker.
//! * [`Server`] — a single-threaded epoll/kqueue reactor (via
//!   [`cobra_poll`]) driving non-blocking sockets: per-connection state
//!   machines feed an incremental frame decoder, many requests may be in
//!   flight per connection (pipelining), and every `UPDATE` admitted in
//!   one readiness round coalesces into a single ingest-handle settle —
//!   propagation blocking applied at the network ingress. Backpressure
//!   is never hidden: a full shard FIFO becomes an explicit
//!   `BUSY { accepted }` response (tuple-level admission control), and
//!   the connection cap refuses the connection (connection-level).
//!   Streaming requests (`REPLICATE`, `SUBSCRIBE`) escalate off the
//!   reactor onto dedicated blocking streamer threads.
//! * [`S3FifoCache`] — the read path. `QUERY` is answered from cached
//!   `(epoch, block)` slices of published epoch snapshots, evicted with
//!   the S3-FIFO policy (small/main/ghost queues), so skewed query
//!   workloads stop contending on the snapshot publish lock.
//! * [`ServeClient`] — a blocking client whose
//!   [`update_all`](ServeClient::update_all) pipelines a window of
//!   `UPDATE` frames before reading acknowledgements, and whose
//!   `BUSY`-suffix retry loop extends the pipeline's zero-loss
//!   guarantee across the wire.
//! * **MVCC** (backed by [`cobra_mvcc`]) — the server retains a window
//!   of published epochs for time travel (`QUERY_AT`), diff reads
//!   (`DIFF`, by copy-on-write segment identity), and push
//!   subscriptions: [`ServeClient::subscribe`] turns a connection into
//!   a [`Subscription`] streaming gap-free per-epoch [`SubEvent`]s,
//!   with a lossless `LAGGED` + diff re-sync path when a subscriber
//!   falls behind.
//!
//! ## Quick start
//!
//! ```
//! use cobra_serve::{ServeClient, ServeConfig, Server};
//! use cobra_stream::StreamConfig;
//!
//! let server = Server::start(1024, StreamConfig::new(), ServeConfig::new())
//!     .expect("bind");
//! let mut client = ServeClient::connect(server.local_addr()).expect("connect");
//!
//! client.update_all(&[(7, 40), (7, 2)]).expect("update");
//! client.seal().expect("seal");
//!
//! // Publication is asynchronous; poll until the sealed epoch lands.
//! let value = loop {
//!     let (epoch, value) = client.query(7).expect("query");
//!     if epoch >= 1 {
//!         break value;
//!     }
//!     std::thread::yield_now();
//! };
//! assert_eq!(value, 42);
//!
//! let (snapshot, stats) = server.shutdown();
//! assert_eq!(*snapshot.get(7), 42);
//! assert_eq!(stats.tuples_ingested, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
mod streamer;

pub use cache::{CacheStats, S3FifoCache};
pub use client::{ClientError, ServeClient, SubEvent, Subscription, UpdateOutcome};
pub use protocol::{ErrorCode, Frame, WireError, WireStats};
pub use server::{ServeConfig, Server, SumU64};
