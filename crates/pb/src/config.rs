//! Bin-count selection heuristics.
//!
//! The paper's Figure 4 shows the fundamental tension of software PB: the
//! Accumulate phase wants *many* bins (each bin's key range fits in L1)
//! while the Binning phase wants *few* (all C-Buffers fit in L1/L2).
//! Software PB must pick a compromise; these helpers compute the three
//! operating points used throughout the evaluation.

/// Cache-line size in bytes.
const LINE_BYTES: u64 = 64;

fn clamp_bins(num_keys: u32, bins: u64) -> usize {
    bins.clamp(1, num_keys.max(1) as u64) as usize
}

/// Number of bins that makes one bin's updated data fit in a target cache
/// of `cache_bytes` (the Accumulate phase's ideal: target the L1,
/// `bin_range * elem_bytes <= cache_bytes / 2`).
pub fn ideal_accumulate_bins(num_keys: u32, elem_bytes: u32, cache_bytes: u64) -> usize {
    let budget = (cache_bytes / 2).max(LINE_BYTES);
    let range = (budget / elem_bytes.max(1) as u64).max(1);
    clamp_bins(num_keys, (num_keys as u64).div_ceil(range))
}

/// Number of bins that keeps every C-Buffer resident in a cache of
/// `cache_bytes` (the Binning phase's ideal: one line per bin,
/// `bins * 64B <= cache_bytes / 2`).
pub fn ideal_binning_bins(num_keys: u32, cache_bytes: u64) -> usize {
    let budget = (cache_bytes / 2).max(LINE_BYTES);
    clamp_bins(num_keys, budget / LINE_BYTES)
}

/// The compromise both phases can live with (the red dotted line of
/// Figure 4a): the geometric mean of the two L1-anchored ideals — the
/// C-Buffers overflow L1 a little and the Accumulate ranges overflow L1 a
/// little.
pub fn sweet_spot_bins(num_keys: u32, elem_bytes: u32, l1_bytes: u64) -> usize {
    let acc = ideal_accumulate_bins(num_keys, elem_bytes, l1_bytes) as f64;
    let bin = ideal_binning_bins(num_keys, l1_bytes) as f64;
    clamp_bins(num_keys, (acc * bin).sqrt().round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_ideal_targets_cache() {
        // 1M keys x 4B elements, 32KB L1 => range 4096 keys => 256 bins.
        let bins = ideal_accumulate_bins(1 << 20, 4, 32 * 1024);
        assert_eq!(bins, 256);
    }

    #[test]
    fn binning_ideal_counts_cbuffer_lines() {
        // 32KB L1 / 2 = 16KB => 256 lines.
        assert_eq!(ideal_binning_bins(1 << 20, 32 * 1024), 256);
        // 2MB LLC / 2 = 1MB => 16384 lines.
        assert_eq!(ideal_binning_bins(1 << 30, 2 * 1024 * 1024), 16384);
    }

    #[test]
    fn sweet_spot_between_ideals() {
        let keys = 1 << 22;
        let acc = ideal_accumulate_bins(keys, 4, 32 * 1024);
        let bin = ideal_binning_bins(keys, 32 * 1024);
        let mid = sweet_spot_bins(keys, 4, 32 * 1024);
        let (lo, hi) = (acc.min(bin), acc.max(bin));
        assert!((lo..=hi).contains(&mid), "{lo} <= {mid} <= {hi}");
        // At 4M keys the Figure 4 tension is real: the two ideals differ.
        assert!(bin < acc, "binning {bin} vs accumulate {acc}");
    }

    #[test]
    fn tiny_domains_clamp_to_num_keys() {
        assert_eq!(ideal_accumulate_bins(4, 4, 64), 1);
        assert!(ideal_binning_bins(2, 1 << 20) <= 2);
    }

    #[test]
    fn never_zero_bins() {
        assert!(ideal_accumulate_bins(1, 16, 64) >= 1);
        assert!(ideal_binning_bins(1, 64) >= 1);
        assert!(sweet_spot_bins(1, 4, 64) >= 1);
    }
}
