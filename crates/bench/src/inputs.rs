//! The scaled input suite standing in for the paper's Table III.
//!
//! Each generator matches a degree-distribution *class* of the original
//! inputs (see DESIGN.md §2): power-law web/social graphs (DBP, TWIT,
//! UK2005), Graph500 Kronecker (KRON), uniform random (URND), bounded-degree
//! road networks (EURO), an extra-skew class (HBUBL), HPCG-like stencils and
//! SuiteSparse-style simulation/optimization matrices.

use cobra_graph::{gen, matrix};
use cobra_kernels::Input;

/// Input sizing: `Quick` for CI, `Standard` for the default evaluation,
/// `Full` for paper-regime runs (slow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs (seconds for the whole suite).
    Quick,
    /// Default: large enough to exhibit the bin-count tension of Figure 4.
    Standard,
    /// 4 M-vertex graphs / 16 M-entry matrices (tens of minutes).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments
    /// (default: `Standard`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Standard
        }
    }

    /// log2 of the graph vertex count.
    pub fn graph_scale(&self) -> u32 {
        match self {
            Scale::Quick => 15,
            Scale::Standard => 21,
            Scale::Full => 22,
        }
    }

    /// Edges per vertex for generated graphs.
    pub fn degree(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Standard => 4,
            Scale::Full => 8,
        }
    }

    /// Matrix dimension.
    pub fn matrix_rows(&self) -> u32 {
        match self {
            Scale::Quick => 1 << 14,
            Scale::Standard => 1 << 21,
            Scale::Full => 1 << 22,
        }
    }

    /// Number of keys for Integer Sort.
    pub fn sort_keys(&self) -> usize {
        match self {
            Scale::Quick => 1 << 16,
            Scale::Standard => 1 << 23,
            Scale::Full => 1 << 24,
        }
    }

    /// Key domain for Integer Sort.
    pub fn sort_max_key(&self) -> u32 {
        match self {
            Scale::Quick => 1 << 15,
            Scale::Standard => 1 << 22,
            Scale::Full => 1 << 23,
        }
    }
}

/// An input with its Table III-style name.
#[derive(Debug, Clone)]
pub struct NamedInput {
    /// Suite name (primed to mark the scaled stand-in, e.g. `DBP'`).
    pub name: String,
    /// The input itself.
    pub input: Input,
}

fn named(name: &str, input: Input) -> NamedInput {
    NamedInput {
        name: name.to_owned(),
        input,
    }
}

/// The graph suite (power-law, Kronecker, uniform, road, extra-skew).
pub fn graph_suite(scale: Scale) -> Vec<NamedInput> {
    let s = scale.graph_scale();
    let d = scale.degree();
    let n = 1u32 << s;
    let side = (n as f64).sqrt() as u32;
    vec![
        named("DBP'", Input::graph(gen::rmat(s, d, 0xDB9))),
        named("KRON'", Input::graph(gen::kronecker(s, d, 0x7201))),
        named(
            "URND'",
            Input::graph(gen::uniform_random(n, n as usize * d, 0x0123)),
        ),
        named("EURO'", Input::graph(gen::road_mesh(side, 0xE0E0))),
        named(
            "HBUBL'",
            Input::graph(gen::zipf(n, n as usize * d, 1.05, 0x4B)),
        ),
    ]
}

/// A reduced graph suite for the more expensive sweeps.
pub fn graph_suite_small(scale: Scale) -> Vec<NamedInput> {
    graph_suite(scale).into_iter().take(3).collect()
}

/// The matrix suite (stencil / banded / random / power-law classes).
pub fn matrix_suite(scale: Scale) -> Vec<NamedInput> {
    let n = scale.matrix_rows();
    // Stencil grid sized to roughly n rows.
    let side = (n as f64).cbrt() as u32;
    vec![
        named(
            "HPCG'",
            Input::matrix(matrix::stencil27(side, side, side.max(2))),
        ),
        named("RAND'", Input::matrix(matrix::random_uniform(n, 4, 0x11AC))),
        named("BAND'", Input::matrix(matrix::banded(n, 2, 0xBA9D))),
        named(
            "PLAW'",
            Input::matrix(matrix::powerlaw_rows(n, 4, 1.1, 0x91AF)),
        ),
    ]
}

/// The sort input (random keys, as in the NAS IS setup).
pub fn sort_input(scale: Scale) -> NamedInput {
    named(
        "RKEYS'",
        Input::keys(
            gen::random_keys(scale.sort_keys(), scale.sort_max_key(), 0x5027),
            scale.sort_max_key(),
        ),
    )
}

/// The default inputs each kernel is evaluated on, mirroring Section VI's
/// pairing of kernels to input kinds.
pub fn kernel_inputs(kernel: cobra_kernels::KernelId, scale: Scale) -> Vec<NamedInput> {
    use cobra_kernels::KernelId::*;
    match kernel {
        DegreeCount | NeighborPopulate | Pagerank | Radii => graph_suite(scale),
        IntSort => vec![sort_input(scale)],
        Spmv | Transpose | Pinv | SymPerm => matrix_suite(scale),
    }
}

/// One representative input per kernel (for the single-input sweeps).
pub fn representative_input(kernel: cobra_kernels::KernelId, scale: Scale) -> NamedInput {
    use cobra_kernels::KernelId::*;
    match kernel {
        DegreeCount | NeighborPopulate | Pagerank | Radii => graph_suite(scale)
            .into_iter()
            .next()
            .expect("nonempty suite"),
        IntSort => sort_input(scale),
        Spmv | Transpose | Pinv | SymPerm => matrix_suite(scale)
            .into_iter()
            .nth(1)
            .expect("nonempty suite"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_generates() {
        let gs = graph_suite(Scale::Quick);
        assert_eq!(gs.len(), 5);
        for g in &gs {
            assert!(
                g.input.num_updates(cobra_kernels::KernelId::DegreeCount) > 0,
                "{}",
                g.name
            );
        }
        let ms = matrix_suite(Scale::Quick);
        assert_eq!(ms.len(), 4);
        let s = sort_input(Scale::Quick);
        assert!(s.input.num_updates(cobra_kernels::KernelId::IntSort) > 0);
    }

    #[test]
    fn every_kernel_has_inputs() {
        for &k in &cobra_kernels::ALL_KERNELS {
            assert!(!kernel_inputs(k, Scale::Quick).is_empty());
            let _ = representative_input(k, Scale::Quick);
        }
    }
}
