//! MVCC end-to-end tests: time travel, diff reads, push subscriptions
//! and retention GC against a real [`Server`] on an ephemeral port.
//!
//! The centerpiece is `subscribers_reconstruct_state_from_deltas_alone`:
//! three concurrent subscribers fold 50 epochs of pushed deltas (one of
//! them deliberately forced through the `LAGGED` + diff re-sync path)
//! and every reconstructed per-epoch state must be bit-identical to the
//! server's own `SNAPSHOT{epoch}` answer.

use cobra_serve::protocol::{self, opcodes, Frame, PROTOCOL_VERSION};
use cobra_serve::{ClientError, ErrorCode, ServeClient, ServeConfig, Server, SubEvent, WireError};
use cobra_stream::StreamConfig;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const KEYS: u32 = 256;

fn mvcc_server_with_keys(keys: u32, retain: usize, sub_queue_epochs: usize) -> Server {
    let stream_cfg = StreamConfig::new().shards(2).batch_tuples(64);
    let serve_cfg = ServeConfig::new()
        .cache_blocks(16)
        .cache_block_keys(64)
        .read_timeout(Duration::from_millis(10))
        .retain_epochs(retain)
        .sub_queue_epochs(sub_queue_epochs);
    Server::start(keys, stream_cfg, serve_cfg).expect("bind ephemeral server")
}

fn mvcc_server(retain: usize, sub_queue_epochs: usize) -> Server {
    mvcc_server_with_keys(KEYS, retain, sub_queue_epochs)
}

/// Seals one epoch carrying `tuples` and blocks until it is published.
fn seal_and_publish(client: &mut ServeClient, tuples: &[(u32, u64)]) -> u64 {
    client.update_all(tuples).expect("update");
    let sealed = client.seal().expect("seal");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (epoch, _) = client.query(0).expect("query");
        if epoch >= sealed {
            return sealed;
        }
        assert!(Instant::now() < deadline, "epoch {sealed} never published");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn time_travel_reads_every_retained_epoch() {
    let server = mvcc_server(8, 16);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Epoch e adds e to key 7, so the history is 1, 3, 6, 10 — cumulative.
    let mut expect = HashMap::new();
    let mut sum = 0u64;
    for e in 1..=4u64 {
        sum += e;
        assert_eq!(seal_and_publish(&mut client, &[(7, e)]), e);
        expect.insert(e, sum);
    }

    for e in 1..=4u64 {
        let (epoch, value) = client.query_at(e, 7).expect("time travel");
        assert_eq!((epoch, value), (e, expect[&e]));
        // Pinned snapshots agree with the point reads.
        let (sepoch, _, values) = client.snapshot(e, 0, KEYS).expect("pinned snapshot");
        assert_eq!(sepoch, e);
        assert_eq!(values[7], expect[&e]);
    }
    // Epoch 0 resolves to the latest.
    let (epoch, value) = client.query_at(0, 7).expect("latest");
    assert_eq!((epoch, value), (4, expect[&4]));
    // A future epoch is "not yet published", not "evicted".
    match client.query_at(99, 7) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SnapshotUnavailable),
        other => panic!("expected SnapshotUnavailable, got {other:?}"),
    }

    // DIFF between adjacent epochs returns exactly the changed key.
    for e in 1..=3u64 {
        let (from, to, entries) = client.diff(e, e + 1, 0, KEYS).expect("diff");
        assert_eq!((from, to), (e, e + 1));
        assert_eq!(entries, vec![(7, expect[&(e + 1)])]);
    }
    // to_epoch 0 resolves to the latest; a self-diff is empty.
    let (_, to, entries) = client.diff(1, 0, 0, KEYS).expect("diff to latest");
    assert_eq!(to, 4);
    assert_eq!(entries, vec![(7, expect[&4])]);
    let (_, _, none) = client.diff(2, 2, 0, KEYS).expect("self diff");
    assert_eq!(none, vec![]);

    server.shutdown();
}

#[test]
fn eviction_is_typed_and_window_of_one_behaves_like_before() {
    // Default retention (1): the pre-MVCC behavior.
    let server = mvcc_server(1, 16);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    seal_and_publish(&mut client, &[(3, 10)]);
    seal_and_publish(&mut client, &[(3, 20)]);

    // Epoch 0 and the exact latest both work...
    assert_eq!(client.query_at(0, 3).expect("latest").1, 30);
    assert_eq!(client.query_at(2, 3).expect("exact latest").1, 30);
    // ...but the previous epoch is evicted, with a typed error naming it.
    match client.query_at(1, 3) {
        Err(ClientError::Server { code, detail }) => {
            assert_eq!(code, ErrorCode::EpochEvicted);
            assert!(
                detail.contains('1'),
                "detail should name the epoch: {detail}"
            );
        }
        other => panic!("expected EpochEvicted, got {other:?}"),
    }
    // DIFF against an evicted epoch is refused the same way.
    match client.diff(1, 2, 0, KEYS) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::EpochEvicted),
        other => panic!("expected EpochEvicted, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.retained_epochs, 1);
    assert!(stats.retained_bytes > 0);
    server.shutdown();
}

#[test]
fn retention_gc_frees_memory_when_epochs_narrow() {
    let server = mvcc_server(4, 16);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Four epochs that each rewrite EVERY segment: the window holds four
    // fully divergent snapshot versions.
    let all_keys: Vec<(u32, u64)> = (0..KEYS).map(|k| (k, 1)).collect();
    for _ in 0..4 {
        seal_and_publish(&mut client, &all_keys);
    }
    let wide = client.stats().expect("stats").retained_bytes;

    // Four more epochs that each touch ONE key: eviction drops the
    // full-rewrite snapshots and the survivors share all but one segment,
    // so the unique-bytes accounting must shrink.
    for _ in 0..4 {
        seal_and_publish(&mut client, &[(0, 1)]);
    }
    let narrow_stats = client.stats().expect("stats");
    assert_eq!(narrow_stats.retained_epochs, 4);
    assert!(
        narrow_stats.retained_bytes < wide,
        "GC should free evicted segment versions: {} -> {}",
        wide,
        narrow_stats.retained_bytes
    );
    server.shutdown();
}

/// Folds one subscriber's event stream over 50 epochs into per-epoch
/// state vectors, re-syncing through DIFF on its own aux connection when
/// lagged. Returns (states by epoch, number of LAGGED events absorbed).
fn reconstruct(
    sub_client: ServeClient,
    addr: std::net::SocketAddr,
    keys: u32,
    last_epoch: u64,
    delay: Duration,
) -> (HashMap<u64, Vec<u64>>, u64) {
    let mut sub = sub_client.subscribe(0, keys).expect("subscribe");
    let mut aux = ServeClient::connect(addr).expect("connect aux");
    // Baseline state: the retained snapshot at the subscription's start
    // epoch (epoch 0 is the seed — all reducer identities).
    let (mut state, mut last) = if sub.start_epoch() == 0 {
        (vec![0u64; keys as usize], 0)
    } else {
        let (e, _, v) = aux
            .snapshot(sub.start_epoch(), 0, keys)
            .expect("baseline snapshot");
        (v, e)
    };
    std::thread::sleep(delay); // force the slow subscriber to overflow
    let mut states = HashMap::new();
    let mut lags = 0u64;
    while last < last_epoch {
        match sub.next_event().expect("push event") {
            SubEvent::Delta {
                from_epoch,
                to_epoch,
                entries,
            } => {
                // The gap-free guarantee: every epoch arrives, in order.
                assert_eq!(from_epoch, last, "delta must chain to the last epoch");
                assert_eq!(to_epoch, last + 1, "delta must advance by one epoch");
                for (k, v) in entries {
                    state[k as usize] = v;
                }
                last = to_epoch;
                states.insert(last, state.clone());
            }
            SubEvent::Lagged { resume_epoch } => {
                assert!(resume_epoch > last, "lag must move forward");
                lags += 1;
                // Lossless re-sync: one DIFF covers the missed epochs.
                let (_, to, entries) = aux.diff(last, resume_epoch, 0, keys).expect("re-sync diff");
                assert_eq!(to, resume_epoch);
                for (k, v) in entries {
                    state[k as usize] = v;
                }
                last = resume_epoch;
                states.insert(last, state.clone());
            }
        }
    }
    let (_, bye_epoch) = sub.unsubscribe().expect("unsubscribe");
    assert!(bye_epoch >= last_epoch);
    (states, lags)
}

#[test]
fn subscribers_reconstruct_state_from_deltas_alone() {
    const EPOCHS: u64 = 50;
    // A key space big enough that full-rewrite epochs produce ~200 KB
    // deltas: the sleeping subscriber's socket fills, its pusher blocks,
    // and its bounded hub queue must overflow into LAGGED.
    const BIG_KEYS: u32 = 16 * 1024;
    // Retain every epoch so both the verification snapshots and the
    // lagged re-sync diff can reach arbitrarily far back.
    let server = mvcc_server_with_keys(BIG_KEYS, EPOCHS as usize + 4, 8);
    let addr = server.local_addr();
    let mut driver = ServeClient::connect(addr).expect("connect driver");

    // Subscribers register BEFORE any epoch publishes. The third sleeps
    // through the whole run, so its 8-epoch queue must overflow into the
    // LAGGED + re-sync path.
    let mut joins = Vec::new();
    for delay_ms in [0u64, 0, 4000] {
        let sub_client = ServeClient::connect(addr).expect("connect subscriber");
        joins.push(std::thread::spawn(move || {
            reconstruct(
                sub_client,
                addr,
                BIG_KEYS,
                EPOCHS,
                Duration::from_millis(delay_ms),
            )
        }));
    }

    // 50 epochs, each rewriting every key (value e ensures every key's
    // accumulated sum changes every epoch).
    for e in 1..=EPOCHS {
        let tuples: Vec<(u32, u64)> = (0..BIG_KEYS).map(|k| (k, e)).collect();
        assert_eq!(seal_and_publish(&mut driver, &tuples), e);
    }

    // Ground truth: the server's own pinned snapshots at every epoch.
    let mut truth = HashMap::new();
    for e in 1..=EPOCHS {
        let (epoch, _, values) = driver.snapshot(e, 0, BIG_KEYS).expect("truth snapshot");
        assert_eq!(epoch, e);
        truth.insert(e, values);
    }

    let mut total_lags = 0u64;
    for (i, join) in joins.into_iter().enumerate() {
        let (states, lags) = join.join().expect("subscriber thread");
        total_lags += lags;
        assert!(
            states.contains_key(&EPOCHS),
            "subscriber {i} never reached epoch {EPOCHS}"
        );
        for (epoch, state) in &states {
            assert_eq!(
                state, &truth[epoch],
                "subscriber {i} diverged from the server at epoch {epoch}"
            );
        }
        if i < 2 {
            // The fast subscribers must have replayed EVERY epoch from
            // deltas alone.
            for e in 1..=EPOCHS {
                assert!(states.contains_key(&e), "subscriber {i} missed epoch {e}");
            }
        }
    }
    assert!(
        total_lags >= 1,
        "the slow subscriber should have been forced through LAGGED"
    );

    let stats = driver.stats().expect("stats");
    assert_eq!(stats.active_subscribers, 0, "all subscribers unsubscribed");
    assert!(stats.deltas_pushed > 0);
    server.shutdown();
}

#[test]
fn unsubscribe_returns_the_connection_to_request_mode() {
    let server = mvcc_server(4, 16);
    let addr = server.local_addr();
    let mut driver = ServeClient::connect(addr).expect("connect driver");

    let sub_client = ServeClient::connect(addr).expect("connect subscriber");
    let mut sub = sub_client.subscribe(0, KEYS).expect("subscribe");

    seal_and_publish(&mut driver, &[(5, 55)]);
    match sub.next_event().expect("first push") {
        SubEvent::Delta {
            to_epoch, entries, ..
        } => {
            assert_eq!(to_epoch, 1);
            assert_eq!(entries, vec![(5, 55)]);
        }
        other => panic!("expected a delta, got {other:?}"),
    }
    assert_eq!(driver.stats().expect("stats").active_subscribers, 1);

    // Back to request mode: the same connection answers queries again.
    let (mut client, _) = sub.unsubscribe().expect("unsubscribe");
    assert_eq!(client.query(5).expect("query after unsubscribe").1, 55);
    assert_eq!(client.stats().expect("stats").active_subscribers, 0);

    // Dropping a subscribed connection (disconnect) also unregisters.
    let sub2 = ServeClient::connect(addr).expect("connect subscriber 2");
    let _sub2 = sub2.subscribe(0, KEYS).expect("subscribe 2");
    assert_eq!(driver.stats().expect("stats").active_subscribers, 1);
    drop(_sub2);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if driver.stats().expect("stats").active_subscribers == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "disconnect never unsubscribed");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}

#[test]
fn subscribe_rejects_bad_ranges_without_killing_the_connection() {
    let server = mvcc_server(2, 16);
    let client = ServeClient::connect(server.local_addr()).expect("connect");
    match client.subscribe(KEYS, KEYS + 10) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadRange),
        Err(other) => panic!("expected BadRange, got {other:?}"),
        Ok(_) => panic!("expected BadRange, got a subscription"),
    }
    server.shutdown();
}

/// Reads one length-prefixed frame body off a raw socket.
fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("read length");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).expect("read body");
    body
}

#[test]
fn mixed_version_peers_are_refused_in_both_directions() {
    // Old client vs new server: a v2 QUERY is refused with a clean error
    // frame before its opcode is ever interpreted, then the server hangs
    // up — no desync, no crash.
    let server = mvcc_server(2, 16);
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut v2_query = Vec::new();
    protocol::encode(&Frame::Query { key: 1 }, &mut v2_query);
    v2_query[4] = PROTOCOL_VERSION - 1; // regress the version byte
    raw.write_all(&v2_query).expect("send v2 frame");
    let body = read_raw_frame(&mut raw);
    let reply = protocol::decode(&body).expect("decode error frame");
    match reply {
        Frame::Error { code, detail } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(
                detail.contains("protocol version"),
                "detail should name the mismatch: {detail}"
            );
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();

    // New client vs old server: a fake "old" server answers with a v2
    // frame; the client surfaces a typed VersionMismatch, not a hang.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let fake_addr = listener.local_addr().expect("fake addr");
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let _ = read_raw_frame(&mut conn); // swallow the request
        let mut reply = Vec::new();
        protocol::encode(
            &Frame::Value {
                epoch: 1,
                value: 42,
            },
            &mut reply,
        );
        reply[4] = PROTOCOL_VERSION - 1; // speak the old revision
        conn.write_all(&reply).expect("send v2 reply");
    });
    let mut client = ServeClient::connect(fake_addr).expect("connect fake");
    match client.query(1) {
        Err(ClientError::Wire(WireError::VersionMismatch { got, want })) => {
            assert_eq!(got, PROTOCOL_VERSION - 1);
            assert_eq!(want, PROTOCOL_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    fake.join().expect("fake server thread");

    // The version byte sits in every frame, so the rejection covers every
    // opcode — including the new MVCC ones.
    let mut buf = Vec::new();
    protocol::encode(&Frame::Unsubscribe, &mut buf);
    assert_eq!(buf[5], opcodes::UNSUBSCRIBE);
}
