//! # cobra-repro — meta-crate
//!
//! Re-exports the crates of the COBRA reproduction (HPCA 2022: *Improving
//! Locality of Irregular Updates with Hardware Assisted Propagation
//! Blocking*) under one roof so the examples and integration tests in this
//! repository have a single dependency.
//!
//! * [`sim`] — cache hierarchy + out-of-order timing simulator (substrate)
//! * [`graph`] — graphs, sparse matrices and synthetic generators (substrate)
//! * [`pb`] — software Propagation Blocking library
//! * [`cobra`] — the COBRA hardware model and execution harness (the paper's
//!   contribution)
//! * [`kernels`] — the ten evaluated workloads
//! * [`spgemm`] — propagation-blocked sparse matrix-matrix multiplication
//!   with Coup-style frame fusion
//! * [`stream`] — long-lived sharded streaming ingestion of irregular
//!   updates (epochs, snapshots, backpressure)
//! * [`serve`] — dependency-free TCP service over the stream pipeline
//!   (binary wire protocol, admission control, S3-FIFO snapshot cache)

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub use cobra_core as cobra;
pub use cobra_graph as graph;
pub use cobra_kernels as kernels;
pub use cobra_pb as pb;
pub use cobra_serve as serve;
pub use cobra_sim as sim;
pub use cobra_spgemm as spgemm;
pub use cobra_stream as stream;
