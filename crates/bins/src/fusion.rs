//! Frame-level commutative reducer fusion (Coup-style).
//!
//! "Flexible Support for Fast Parallel Commutative Updates" (Coup)
//! observes that commutative updates need not reach the shared copy of a
//! datum individually — private partial results can absorb them and be
//! reduced later. Applied to propagation blocking, the C-Buffer staging
//! frame *is* that private copy: while a tuple sits staged for bin `b`,
//! a second update to the same key can be folded into the staged value
//! instead of occupying a second frame slot, so one tuple crosses to the
//! in-memory bin where two would have. On skewed key distributions this
//! cuts bin traffic exactly where it concentrates.
//!
//! [`FuseTable`] is the lookup structure that makes the fold O(1): a
//! small direct-mapped table (one slot per possible frame entry) mapping
//! a key hash to the frame index where that key is staged. It is a hint
//! structure only — a hash collision evicts the previous slot, which
//! costs a missed fusion, never a lost or misrouted update.
//!
//! **Legality** is the caller's problem by design: the table never
//! combines values itself, it only reports where a key is staged. The
//! caller supplies the merge closure, and only kernels whose reducer is
//! declared commutative (`Reducer::COMMUTATIVE` + `FUSABLE` in
//! `cobra-stream`, validated by cobra-check's commutativity oracle) may
//! route through the fused insert path at all. The merge closure may
//! also *refuse* a pair (return `false`) when the two payloads are not
//! combinable — e.g. SpGEMM partial products for the same output row but
//! different output columns — in which case the tuple stages normally.

use crate::frame::FRAME_KEYS;

/// Slot index for a key: top `log2(FRAME_KEYS)` bits of a Fibonacci hash.
const SLOT_SHIFT: u32 = 32 - (FRAME_KEYS as u32).trailing_zeros();

/// Sentinel marking a [`FuseTable`] slot as empty.
const EMPTY: u8 = u8::MAX;

/// Running counters for the fusion pass.
///
/// `attempts` counts every tuple offered to the fused insert path,
/// `hits` the ones folded into an already-staged tuple (so `attempts -
/// hits` tuples actually crossed into bin memory), and `flushes` the
/// table resets forced by frame flushes (each flush empties the frame,
/// so nothing staged remains to fuse with).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Tuples offered to the fused insert path.
    pub attempts: u64,
    /// Tuples folded into a staged tuple (never reached bin memory).
    pub hits: u64,
    /// Coalescing-table resets caused by frame flushes.
    pub flushes: u64,
}

impl FuseStats {
    /// Fraction of offered tuples that fused away (0.0 when none offered).
    pub fn fused_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.hits as f64 / self.attempts as f64
        }
    }
}

/// A direct-mapped coalescing table in front of one C-Buffer frame.
///
/// One slot per possible frame entry ([`FRAME_KEYS`]); each live slot
/// records the key staged at some frame index. [`probe`](Self::probe)
/// answers "where is `key` currently staged, if anywhere"; the caller
/// folds the new value there or stages normally and
/// [`note`](Self::note)s the new position. [`clear`](Self::clear) must
/// accompany every frame flush/clear, or stale indices would alias new
/// tuples.
#[derive(Debug, Clone)]
pub struct FuseTable {
    /// Frame index staged at each slot ([`EMPTY`] when vacant).
    idx: [u8; FRAME_KEYS],
    /// Key tag for each live slot (valid only where `idx != EMPTY`).
    key: [u32; FRAME_KEYS],
}

impl Default for FuseTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FuseTable {
    /// An empty table.
    pub fn new() -> Self {
        FuseTable {
            idx: [EMPTY; FRAME_KEYS],
            key: [0; FRAME_KEYS],
        }
    }

    #[inline]
    fn slot(key: u32) -> usize {
        // Fibonacci hash: keys within one bin share their high bits (they
        // share a key range), so index by the multiplied top bits rather
        // than the raw low bits.
        (key.wrapping_mul(0x9E37_79B1) >> SLOT_SHIFT) as usize
    }

    /// Frame index where `key` is staged, if the table still tracks it.
    #[inline]
    pub fn probe(&self, key: u32) -> Option<usize> {
        let s = Self::slot(key);
        if self.idx[s] != EMPTY && self.key[s] == key {
            Some(self.idx[s] as usize)
        } else {
            None
        }
    }

    /// Records that `key` was just staged at frame index `frame_idx`
    /// (evicting whatever the slot tracked before — a missed fusion at
    /// worst).
    #[inline]
    pub fn note(&mut self, key: u32, frame_idx: usize) {
        debug_assert!(frame_idx < FRAME_KEYS);
        let s = Self::slot(key);
        self.idx[s] = frame_idx as u8;
        self.key[s] = key;
    }

    /// Forgets every staged position. Must be called whenever the frame
    /// the table fronts is flushed or cleared.
    #[inline]
    pub fn clear(&mut self) {
        self.idx = [EMPTY; FRAME_KEYS];
    }

    /// Whether no slot is live.
    pub fn is_empty(&self) -> bool {
        self.idx.iter().all(|&i| i == EMPTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::CBufFrame;

    #[test]
    fn probe_note_clear_roundtrip() {
        let mut t = FuseTable::new();
        assert!(t.is_empty());
        assert_eq!(t.probe(42), None);
        t.note(42, 3);
        assert_eq!(t.probe(42), Some(3));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.probe(42), None);
    }

    #[test]
    fn colliding_key_evicts_slot_without_aliasing() {
        // Two keys that hash to the same slot: the later note wins, and
        // the earlier key misses instead of aliasing the wrong index.
        let mut t = FuseTable::new();
        let a = 7u32;
        let mut b = a + 1;
        while FuseTable::slot(b) != FuseTable::slot(a) {
            b += 1;
        }
        t.note(a, 0);
        t.note(b, 1);
        assert_eq!(t.probe(a), None, "evicted key must miss");
        assert_eq!(t.probe(b), Some(1));
    }

    #[test]
    fn fused_ratio_bounds() {
        let z = FuseStats::default();
        assert_eq!(z.fused_ratio(), 0.0);
        let s = FuseStats {
            attempts: 8,
            hits: 2,
            flushes: 1,
        };
        assert!((s.fused_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table_drives_in_frame_coalescing() {
        // The intended use: probe, fold into the staged value on hit,
        // stage + note on miss.
        let mut frame = CBufFrame::<u64>::with_capacity(8);
        let mut table = FuseTable::new();
        let mut hits = 0u32;
        for (k, v) in [(5u32, 1u64), (9, 10), (5, 2), (9, 20), (5, 4)] {
            match table.probe(k) {
                Some(i) if frame.keys()[i] == k => {
                    *frame.value_mut(i) += v;
                    hits += 1;
                }
                _ => {
                    frame.push(k, v);
                    table.note(k, frame.len() - 1);
                }
            }
        }
        assert_eq!(hits, 3);
        assert_eq!(frame.keys(), &[5, 9]);
        assert_eq!(frame.values(), &[7, 30]);
    }
}
