//! Single-threaded binning with cacheline-sized coalescing buffers.
//!
//! Storage is the workspace-shared columnar [`BinStore`] (`cobra-bins`):
//! the binner stages tuples in cacheline-aligned [`CBufFrame`]s and
//! transfers full lines into the store's per-bin `keys`/`values` columns.

use cobra_bins::{
    cbuf_capacity, BinMemory, BinStore, CBufFrame, FrameFlushStats, FrozenBins, FuseStats,
    FuseTable,
};

/// One buffered update: apply `value` to the datum identified by `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tuple<V> {
    /// Index of the irregularly-updated element.
    pub key: u32,
    /// The update payload.
    pub value: V,
}

/// An update key outside the binner's configured domain.
///
/// Returned by [`Binner::try_insert`]; with the `check` feature enabled
/// the infallible [`Binner::insert`] also takes this checked path (and
/// panics with the error) instead of a `debug_assert`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinError {
    /// The offending key.
    pub key: u32,
    /// The binner's key domain is `0..num_keys`.
    pub num_keys: u32,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "key {} out of range (domain is 0..{})",
            self.key, self.num_keys
        )
    }
}

impl std::error::Error for BinError {}

/// A binner: routes `(key, value)` tuples into per-range bins through
/// cacheline-sized coalescing buffers (C-Buffers), exactly as software PB's
/// Binning phase does (paper, Section III).
///
/// The bin range is always a power of two so routing is a shift rather than
/// a division (Section V-A notes real implementations do the same).
#[derive(Debug, Clone)]
pub struct Binner<V> {
    num_keys: u32,
    /// C-Buffers, one per bin, each a cacheline-aligned staging frame.
    cbufs: Vec<CBufFrame<V>>,
    store: BinStore<V>,
    flush_stats: FrameFlushStats,
    /// Coup-style frame fusion state, allocated on the first
    /// [`insert_fused`](Self::insert_fused) call (plain `insert`-only
    /// binners pay nothing).
    fusion: Option<FusionState>,
}

/// Per-bin coalescing tables plus the fusion counters.
#[derive(Debug, Clone)]
struct FusionState {
    tables: Vec<FuseTable>,
    stats: FuseStats,
}

impl FusionState {
    fn new(num_bins: usize) -> Self {
        FusionState {
            tables: (0..num_bins).map(|_| FuseTable::new()).collect(),
            stats: FuseStats::default(),
        }
    }
}

/// The bins produced by a [`Binner`], ready for the Accumulate phase.
///
/// A thin wrapper over the shared columnar [`BinStore`]; freeze it with
/// [`Bins::freeze`] to publish the columns zero-copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bins<V> {
    store: BinStore<V>,
}

impl<V: Copy> Binner<V> {
    /// Creates a binner for keys in `0..num_keys` with at least
    /// `min(min_bins, num_keys)` bins (rounded so the bin range is a power
    /// of two). The bin range can never go below one key, so asking for
    /// more bins than keys clamps to one single-key bin per key.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys == 0` or `min_bins == 0`.
    pub fn new(num_keys: u32, min_bins: usize) -> Self {
        let store = BinStore::new(num_keys, min_bins);
        let cbuf_cap = cbuf_capacity(std::mem::size_of::<Tuple<V>>());
        Binner {
            num_keys,
            cbufs: (0..store.num_bins())
                .map(|_| CBufFrame::with_capacity(cbuf_cap))
                .collect(),
            flush_stats: FrameFlushStats {
                frame_capacity: cbuf_cap as u32,
                ..Default::default()
            },
            store,
            fusion: None,
        }
    }

    /// Pre-reserves per-bin capacity from exact counts (the paper's Init
    /// phase computes these with a counting pre-pass to avoid dynamic
    /// allocation during Binning).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != num_bins()`.
    pub fn reserve(&mut self, counts: &[u32]) {
        self.store.reserve(counts);
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.store.num_bins()
    }

    /// log2 of the bin range.
    pub fn bin_shift(&self) -> u32 {
        self.store.bin_shift()
    }

    /// Number of keys per bin (a power of two).
    pub fn bin_range(&self) -> u64 {
        self.store.bin_range()
    }

    /// Routes one update tuple.
    ///
    /// # Panics
    ///
    /// In debug builds — and in all builds when the `check` feature is
    /// enabled — panics if `key >= num_keys`.
    #[inline]
    pub fn insert(&mut self, key: u32, value: V) {
        #[cfg(feature = "check")]
        if let Err(e) = self.try_insert(key, value) {
            panic!("{e}");
        }
        #[cfg(not(feature = "check"))]
        {
            debug_assert!(key < self.num_keys, "key {key} out of range");
            self.insert_unchecked(key, value);
        }
    }

    /// Routes one update tuple, rejecting keys outside `0..num_keys`.
    #[inline]
    pub fn try_insert(&mut self, key: u32, value: V) -> Result<(), BinError> {
        if key >= self.num_keys {
            return Err(BinError {
                key,
                num_keys: self.num_keys,
            });
        }
        self.insert_unchecked(key, value);
        Ok(())
    }

    #[inline]
    fn insert_unchecked(&mut self, key: u32, value: V) {
        let b = (key >> self.store.bin_shift()) as usize;
        #[cfg(feature = "check")]
        crate::trace::bin_write(b, key, self.store.bin_shift());
        let cbuf = &mut self.cbufs[b];
        cbuf.push(key, value);
        if cbuf.is_full() {
            // Full line: bulk-transfer to the in-memory bin (software PB
            // uses non-temporal stores here).
            let n = cbuf.flush_into(&mut self.store, b);
            self.flush_stats.record(n);
            if let Some(f) = self.fusion.as_mut() {
                // The frame emptied: any coalescing positions it tracked
                // are gone.
                f.tables[b].clear();
                f.stats.flushes += 1;
            }
        }
    }

    /// Routes one update tuple through the Coup-style frame fusion pass:
    /// if a tuple with the same key is still staged in the bin's C-Buffer
    /// frame, `merge` is offered the staged value and the new one, and a
    /// `true` return folds them into a single tuple — one fewer tuple
    /// crosses into bin memory. A `false` return (the payloads are not
    /// combinable, e.g. SpGEMM partial products for different output
    /// columns) stages the tuple normally.
    ///
    /// **Legality is the caller's contract**: only updates whose reducer
    /// is commutative may take this path, because fusion reassociates the
    /// reduction (two updates arrive as one). `cobra-check`'s
    /// commutativity oracle validates each kernel's declaration.
    ///
    /// # Panics
    ///
    /// In debug builds — and in all builds when the `check` feature is
    /// enabled — panics if `key >= num_keys`.
    #[inline]
    pub fn insert_fused<F: FnMut(&mut V, &V) -> bool>(&mut self, key: u32, value: V, merge: F) {
        #[cfg(feature = "check")]
        if let Err(e) = self.try_insert_fused(key, value, merge) {
            panic!("{e}");
        }
        #[cfg(not(feature = "check"))]
        {
            debug_assert!(key < self.num_keys, "key {key} out of range");
            self.insert_fused_unchecked(key, value, merge);
        }
    }

    /// [`insert_fused`](Self::insert_fused), rejecting keys outside
    /// `0..num_keys`.
    #[inline]
    pub fn try_insert_fused<F: FnMut(&mut V, &V) -> bool>(
        &mut self,
        key: u32,
        value: V,
        merge: F,
    ) -> Result<(), BinError> {
        if key >= self.num_keys {
            return Err(BinError {
                key,
                num_keys: self.num_keys,
            });
        }
        self.insert_fused_unchecked(key, value, merge);
        Ok(())
    }

    #[inline]
    fn insert_fused_unchecked<F: FnMut(&mut V, &V) -> bool>(
        &mut self,
        key: u32,
        value: V,
        mut merge: F,
    ) {
        let b = (key >> self.store.bin_shift()) as usize;
        #[cfg(feature = "check")]
        crate::trace::bin_write(b, key, self.store.bin_shift());
        let num_bins = self.store.num_bins();
        let fusion = self
            .fusion
            .get_or_insert_with(|| FusionState::new(num_bins));
        fusion.stats.attempts += 1;
        let cbuf = &mut self.cbufs[b];
        let table = &mut fusion.tables[b];
        if let Some(i) = table.probe(key) {
            // The table is cleared on every frame flush, so a live slot
            // always points at a staged tuple carrying exactly this key.
            debug_assert_eq!(cbuf.keys().get(i).copied(), Some(key));
            if merge(cbuf.value_mut(i), &value) {
                fusion.stats.hits += 1;
                return;
            }
        }
        cbuf.push(key, value);
        table.note(key, cbuf.len() - 1);
        if cbuf.is_full() {
            let n = cbuf.flush_into(&mut self.store, b);
            self.flush_stats.record(n);
            table.clear();
            fusion.stats.flushes += 1;
        }
    }

    /// Flushes all partially-filled C-Buffers and returns the bins.
    pub fn finish(mut self) -> Bins<V> {
        self.flush_cbufs();
        Bins { store: self.store }
    }

    /// Flushes all partially-filled C-Buffers and swaps the filled bins
    /// out, leaving the binner empty but reusable with the same geometry.
    ///
    /// This is the double-buffering hook for incremental / streaming use:
    /// the returned [`Bins`] can be accumulated while new tuples keep
    /// flowing into this binner, with per-epoch insertion order preserved
    /// (a tuple inserted before `take_bins` lands in the returned bins,
    /// one inserted after lands in the next take — even mid-C-Buffer).
    pub fn take_bins(&mut self) -> Bins<V> {
        self.flush_cbufs();
        Bins {
            store: self.store.take(),
        }
    }

    /// Tuples currently buffered (C-Buffers plus unflushed bins).
    pub fn buffered_len(&self) -> usize {
        self.cbufs.iter().map(CBufFrame::len).sum::<usize>() + self.store.len()
    }

    /// Bin-memory footprint of the backing store (column bytes, tuples,
    /// slab segments). C-Buffer staging frames are not counted — they are
    /// fixed-size and cache resident by design.
    pub fn memory(&self) -> BinMemory {
        self.store.memory()
    }

    /// Running C-Buffer flush statistics (occupancy of transferred
    /// frames; partial end-of-epoch flushes lower the average).
    pub fn flush_stats(&self) -> FrameFlushStats {
        self.flush_stats
    }

    /// Running Coup-style fusion counters (all zero when
    /// [`insert_fused`](Self::insert_fused) was never used).
    pub fn fuse_stats(&self) -> FuseStats {
        self.fusion.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    fn flush_cbufs(&mut self) {
        #[cfg(feature = "check")]
        crate::trace::bin_flush_all();
        for (b, cbuf) in self.cbufs.iter_mut().enumerate() {
            let n = cbuf.flush_into(&mut self.store, b);
            if n > 0 {
                self.flush_stats.record(n);
                if let Some(f) = self.fusion.as_mut() {
                    f.tables[b].clear();
                    f.stats.flushes += 1;
                }
            }
        }
    }
}

#[cfg(feature = "check")]
impl<V> Bins<V> {
    /// Builds bins directly from raw parts, **bypassing routing**.
    ///
    /// Checker-fixture constructor only: `cobra-check` uses it to seed
    /// deliberately-corrupted bins (e.g. a tuple placed in a bin that does
    /// not own its key) that the race detector must flag. Every API that
    /// *produces* bins normally ([`Binner::insert`]) enforces routing, so
    /// this is the only way to manufacture a violation.
    pub fn from_raw(shift: u32, num_keys: u32, bins: Vec<Vec<Tuple<V>>>) -> Self {
        let mut store = BinStore::with_geometry(shift, num_keys, bins.len());
        for (b, bin) in bins.into_iter().enumerate() {
            for t in bin {
                store.push(b, t.key, t.value);
            }
        }
        Bins { store }
    }
}

impl<V> Bins<V> {
    /// Wraps an already-routed columnar store (the store's bin of a key
    /// must be `key >> bin_shift`; producers in this workspace guarantee
    /// it by construction).
    pub fn from_store(store: BinStore<V>) -> Self {
        Bins { store }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.store.num_bins()
    }

    /// log2 of the bin range.
    pub fn bin_shift(&self) -> u32 {
        self.store.bin_shift()
    }

    /// The key range covered by bin `b`.
    pub fn key_range(&self, b: usize) -> std::ops::Range<u32> {
        self.store.key_range(b)
    }

    /// The key column of bin `b`, in insertion order.
    pub fn keys(&self, b: usize) -> &[u32] {
        self.store.keys(b)
    }

    /// The value column of bin `b`, in insertion order.
    pub fn values(&self, b: usize) -> &[V] {
        self.store.values(b)
    }

    /// Tuples in bin `b`.
    pub fn bin_len(&self, b: usize) -> usize {
        self.store.bin_len(b)
    }

    /// Total buffered tuples across bins.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no tuples were buffered.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The shared columnar store backing these bins.
    pub fn store(&self) -> &BinStore<V> {
        &self.store
    }

    /// Unwraps into the backing store.
    pub fn into_store(self) -> BinStore<V> {
        self.store
    }

    /// Freezes the bins behind an `Arc` — O(1), no column is copied —
    /// so snapshots and caches can share them by reference count.
    pub fn freeze(self) -> FrozenBins<V> {
        self.store.freeze()
    }

    /// Replays every bin in bin order, tuples in insertion order
    /// (the Accumulate phase, serial): streams the two columns.
    pub fn accumulate<F: FnMut(u32, &V)>(&self, f: F) {
        self.store.accumulate(f);
    }
}

impl<V: Copy> Bins<V> {
    /// Borrowed iteration over bin `b`'s tuples in insertion order.
    ///
    /// Zips the bin's key/value columns; no tuple array is materialised
    /// and nothing is cloned.
    pub fn iter_bin(&self, b: usize) -> impl Iterator<Item = Tuple<V>> + '_ {
        self.store
            .iter_bin(b)
            .map(|(&key, &value)| Tuple { key, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_range_and_preserves_order() {
        let mut b = Binner::<u8>::new(100, 4);
        // range rounds to 32 => 4 bins
        assert_eq!(b.bin_range(), 32);
        assert_eq!(b.num_bins(), 4);
        for (i, k) in [0u32, 40, 33, 99, 31, 64].into_iter().enumerate() {
            b.insert(k, i as u8);
        }
        let bins = b.finish();
        assert_eq!(bins.keys(0), &[0, 31]);
        assert_eq!(bins.keys(1), &[40, 33]);
        assert_eq!(bins.keys(2), &[64]);
        assert_eq!(bins.keys(3), &[99]);
        assert_eq!(bins.len(), 6);
    }

    #[test]
    fn cbuffer_flush_transparent_across_capacity() {
        // (u32, u32) tuple = 8 bytes => 8 tuples per line; insert 20 tuples
        // into the same bin and verify nothing is lost or reordered.
        let mut b = Binner::<u32>::new(64, 1);
        for i in 0..20u32 {
            b.insert(i % 64, i);
        }
        let bins = b.finish();
        let vals: Vec<u32> = bins.iter_bin(0).map(|t| t.value).collect();
        assert_eq!(vals, (0..20).collect::<Vec<_>>());
        assert_eq!(bins.values(0), &(0..20).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn key_ranges_partition_domain() {
        let b = Binner::<u32>::new(1000, 7);
        let bins = b.finish();
        let mut covered = 0u64;
        for i in 0..bins.num_bins() {
            let r = bins.key_range(i);
            assert_eq!(r.start as u64, covered);
            covered = r.end as u64;
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn single_bin_degenerate_case() {
        let mut b = Binner::<u32>::new(10, 1);
        assert_eq!(b.num_bins(), 1);
        for k in 0..10 {
            b.insert(k, k);
        }
        assert_eq!(b.finish().len(), 10);
    }

    #[test]
    fn more_bins_than_keys_clamps() {
        let b = Binner::<u32>::new(4, 100);
        // range clamps to 1 => 4 bins.
        assert_eq!(b.bin_range(), 1);
        assert_eq!(b.num_bins(), 4);
    }

    #[test]
    fn accumulate_visits_bins_in_key_order() {
        let mut b = Binner::<u32>::new(256, 4);
        for k in [200u32, 10, 100, 11, 201] {
            b.insert(k, k);
        }
        let bins = b.finish();
        let mut seen = Vec::new();
        bins.accumulate(|k, _| seen.push(k >> bins.bin_shift()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(
            seen, sorted,
            "bins must replay in ascending key-range order"
        );
    }

    #[test]
    fn reserve_accepts_exact_counts() {
        let mut b = Binner::<u32>::new(64, 2);
        let n = b.num_bins();
        b.reserve(&vec![8; n]);
        for k in 0..64 {
            b.insert(k, k);
        }
        assert_eq!(b.finish().len(), 64);
    }

    #[test]
    #[should_panic]
    fn reserve_rejects_wrong_len() {
        let mut b = Binner::<u32>::new(64, 2);
        b.reserve(&[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn is_empty_on_fresh_binner() {
        let bins = Binner::<u32>::new(8, 2).finish();
        assert!(bins.is_empty());
        assert_eq!(bins.len(), 0);
    }

    #[test]
    fn ragged_last_bin_when_num_keys_not_multiple_of_range() {
        // 100 keys, range 32: last bin covers only 96..100.
        let mut b = Binner::<u32>::new(100, 4);
        for k in 0..100 {
            b.insert(k, k);
        }
        let bins = b.finish();
        let last = bins.num_bins() - 1;
        assert_eq!(bins.key_range(last), 96..100);
        assert_eq!(bins.bin_len(last), 4);
        assert_eq!(bins.len(), 100);
    }

    #[test]
    fn single_key_bins_route_exactly() {
        // min_bins == num_keys forces range 1: every key gets its own bin.
        let mut b = Binner::<u32>::new(8, 8);
        assert_eq!(b.bin_range(), 1);
        assert_eq!(b.num_bins(), 8);
        for k in [5u32, 0, 5, 7] {
            b.insert(k, k);
        }
        let bins = b.finish();
        assert_eq!(bins.bin_len(5), 2);
        assert_eq!(bins.bin_len(0), 1);
        assert_eq!(bins.bin_len(7), 1);
        assert_eq!(bins.bin_len(3), 0);
    }

    #[test]
    fn min_bins_guarantee_is_min_of_request_and_keys() {
        for (num_keys, min_bins) in [
            (1u32, 1usize),
            (1, 64),
            (4, 100),
            (5, 5),
            (7, 3),
            (1000, 1000),
            (1000, 4096),
        ] {
            let b = Binner::<u32>::new(num_keys, min_bins);
            let want = min_bins.min(num_keys as usize);
            assert!(
                b.num_bins() >= want,
                "({num_keys}, {min_bins}): got {} bins, want >= {want}",
                b.num_bins()
            );
        }
    }

    #[test]
    fn take_bins_splits_epochs_at_the_call_even_mid_cbuffer() {
        // (u32, u32) tuples => 8 per C-Buffer line. Insert 5 (a partial
        // line), take, insert 3 more: the epochs must not bleed together.
        let mut b = Binner::<u32>::new(64, 1);
        for i in 0..5u32 {
            b.insert(i, i);
        }
        assert_eq!(b.buffered_len(), 5);
        let epoch1 = b.take_bins();
        assert_eq!(
            epoch1.iter_bin(0).map(|t| t.value).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(b.buffered_len(), 0);
        for i in 5..8u32 {
            b.insert(i, i);
        }
        let epoch2 = b.take_bins();
        assert_eq!(
            epoch2.iter_bin(0).map(|t| t.value).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        // Geometry is preserved across takes.
        assert_eq!(epoch2.num_bins(), epoch1.num_bins());
        assert_eq!(epoch2.bin_shift(), epoch1.bin_shift());
    }

    #[test]
    fn take_bins_then_finish_sees_only_the_tail() {
        let mut b = Binner::<u32>::new(256, 4);
        for k in 0..100u32 {
            b.insert(k, k);
        }
        let first = b.take_bins();
        assert_eq!(first.len(), 100);
        for k in 100..120u32 {
            b.insert(k, k);
        }
        let rest = b.finish();
        assert_eq!(rest.len(), 20);
        assert_eq!(rest.keys(1), &(100..120).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn try_insert_rejects_out_of_range_key() {
        let mut b = Binner::<u32>::new(100, 4);
        let err = b.try_insert(100, 7).expect_err("key 100 is out of range");
        assert_eq!(
            err,
            BinError {
                key: 100,
                num_keys: 100
            }
        );
        assert!(err.to_string().contains("key 100"));
        // Nothing was buffered by the rejected insert.
        assert_eq!(b.buffered_len(), 0);
        b.try_insert(99, 7).expect("key 99 is in range");
        assert_eq!(b.finish().len(), 1);
    }

    #[cfg(feature = "check")]
    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_insert_panics_on_out_of_range_key() {
        // With the `check` feature on, the infallible path is promoted from
        // a debug_assert to an always-on checked insert.
        let mut b = Binner::<u32>::new(100, 4);
        b.insert(100, 7);
    }

    #[test]
    fn take_bins_on_empty_binner_is_empty_with_geometry() {
        let mut b = Binner::<u32>::new(100, 4);
        let bins = b.take_bins();
        assert!(bins.is_empty());
        assert_eq!(bins.num_bins(), 4);
        b.insert(99, 7);
        assert_eq!(b.finish().len(), 1);
    }

    #[test]
    fn freeze_shares_columns_zero_copy() {
        let mut b = Binner::<u32>::new(64, 2);
        for k in 0..64u32 {
            b.insert(k, k);
        }
        let bins = b.take_bins();
        let col_ptr = bins.keys(0).as_ptr();
        let frozen = bins.freeze();
        let other = frozen.clone();
        assert!(cobra_bins::FrozenBins::ptr_eq(&frozen, &other));
        // take_bins -> freeze never copied the key column.
        assert_eq!(other.keys(0).as_ptr(), col_ptr);
    }

    #[test]
    fn flush_stats_track_occupancy() {
        // 8-byte tuples => 8 per line. 12 inserts into one bin = one full
        // flush (8) + one partial flush (4) at finish.
        let mut b = Binner::<u32>::new(64, 1);
        for i in 0..12u32 {
            b.insert(0, i);
        }
        let stats_mid = b.flush_stats();
        assert_eq!(stats_mid.frames, 1);
        assert_eq!(stats_mid.tuples, 8);
        let mem = b.memory();
        assert_eq!(mem.tuples, 8, "only the flushed line reached the store");
        let bins = b.finish();
        assert_eq!(bins.len(), 12);
    }

    #[test]
    fn fused_inserts_coalesce_same_key_within_a_frame() {
        // Commutative sum: repeated keys inside one frame fold into one
        // tuple, so fewer tuples cross into bin memory.
        let mut b = Binner::<u32>::new(64, 1);
        for _ in 0..6 {
            b.insert_fused(3, 1u32, |a, v| {
                *a += *v;
                true
            });
        }
        b.insert_fused(9, 10, |a, v| {
            *a += *v;
            true
        });
        let fs = b.fuse_stats();
        assert_eq!(fs.attempts, 7);
        assert_eq!(fs.hits, 5, "five of the six key-3 updates fused away");
        assert!((fs.fused_ratio() - 5.0 / 7.0).abs() < 1e-12);
        let bins = b.finish();
        assert_eq!(bins.len(), 2, "only one tuple per distinct key shipped");
        assert_eq!(bins.keys(0), &[3, 9]);
        assert_eq!(bins.values(0), &[6, 10]);
    }

    #[test]
    fn fused_result_matches_unfused_for_a_commutative_sum() {
        // Skewed keys (period 6 < the 8-tuple frame) so repeats land
        // while their predecessor is still staged.
        let updates: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 6 * 37, i)).collect();
        let mut plain = Binner::<u32>::new(256, 4);
        let mut fused = Binner::<u32>::new(256, 4);
        for &(k, v) in &updates {
            plain.insert(k, v);
            fused.insert_fused(k, v, |a, x| {
                *a = a.wrapping_add(*x);
                true
            });
        }
        let mut want = vec![0u32; 256];
        plain
            .finish()
            .accumulate(|k, &v| want[k as usize] = want[k as usize].wrapping_add(v));
        let mut got = vec![0u32; 256];
        let fbins = fused.finish();
        assert!(fbins.len() < updates.len(), "some fusion must occur");
        fbins.accumulate(|k, &v| got[k as usize] = got[k as usize].wrapping_add(v));
        assert_eq!(got, want);
    }

    #[test]
    fn merge_refusal_stages_normally() {
        // A merge closure that refuses every pair degrades to plain
        // binning: nothing lost, zero hits.
        let mut b = Binner::<u32>::new(64, 1);
        for i in 0..10u32 {
            b.insert_fused(5, i, |_, _| false);
        }
        let fs = b.fuse_stats();
        assert_eq!(fs.hits, 0);
        assert_eq!(fs.attempts, 10);
        let bins = b.finish();
        assert_eq!(bins.len(), 10);
        assert_eq!(
            bins.iter_bin(0).map(|t| t.value).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fusion_never_crosses_a_frame_flush() {
        // 8 tuples per frame for (u32, u32). Fill a frame with distinct
        // keys, then repeat the first key: the frame flushed in between,
        // so the repeat must NOT fuse into the shipped tuple.
        let mut b = Binner::<u32>::new(8, 1);
        let sum = |a: &mut u32, v: &u32| {
            *a += *v;
            true
        };
        for k in 0..8u32 {
            b.insert_fused(k, 100 + k, sum);
        }
        b.insert_fused(0, 1, sum);
        let fs = b.fuse_stats();
        assert_eq!(fs.hits, 0);
        assert_eq!(fs.flushes, 1);
        let bins = b.finish();
        assert_eq!(bins.len(), 9);
        assert_eq!(bins.values(0), &[100, 101, 102, 103, 104, 105, 106, 107, 1]);
    }

    #[test]
    fn plain_and_fused_inserts_interleave_safely() {
        // Plain inserts between fused ones grow the frame without noting
        // positions; fused inserts must still fold onto *their* staged
        // tuples only.
        let mut b = Binner::<u32>::new(64, 1);
        let sum = |a: &mut u32, v: &u32| {
            *a += *v;
            true
        };
        b.insert_fused(1, 10, sum);
        b.insert(2, 20);
        b.insert_fused(1, 5, sum); // fuses onto the key-1 tuple
        b.insert(1, 7); // plain: stages a second key-1 tuple
        let bins = b.finish();
        assert_eq!(bins.keys(0), &[1, 2, 1]);
        assert_eq!(bins.values(0), &[15, 20, 7]);
    }

    #[test]
    fn try_insert_fused_rejects_out_of_range_key() {
        let mut b = Binner::<u32>::new(10, 1);
        let err = b
            .try_insert_fused(10, 1, |a, v| {
                *a += *v;
                true
            })
            .expect_err("key 10 is out of range");
        assert_eq!(err.key, 10);
        assert_eq!(b.buffered_len(), 0);
        assert_eq!(b.fuse_stats(), cobra_bins::FuseStats::default());
    }
}
