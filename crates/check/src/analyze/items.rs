//! Item-level parsing: function tables over the token stream.
//!
//! Walks a lexed file and extracts every `fn` item — name, line, source
//! file, parameter names, body token span — while tracking `#[cfg(test)]`
//! module regions and `#[test]` attributes so rules can exclude test-only
//! code. This is deliberately not a grammar: it tracks brace/paren/angle
//! depth and a handful of keyword patterns, which is exactly enough for
//! files rustc already accepted.

use super::lexer::{Kind, Tok};

/// One source file in the analyzed set, already lexed.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (`crates/stream/src/epoch.rs`).
    pub rel: String,
    /// Owning crate short name (`stream`, `serve`, …).
    pub krate: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// True for files under a `tests/` directory (integration tests).
    pub is_test_file: bool,
}

/// One `fn` item found in a [`SourceFile`].
#[derive(Debug)]
pub struct FnItem {
    /// Function name (unqualified — method and free-fn names collide by
    /// design; the call graph is conservative over name matches).
    pub name: String,
    /// Index into the source set's file table.
    pub file: usize,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// True when this fn is test-only (`#[test]`, inside `#[cfg(test)]
    /// mod`, or in an integration-test file).
    pub is_test: bool,
    /// Parameter names, in order (`self` excluded).
    pub params: Vec<String>,
    /// Token span `[open_brace, close_brace]` of the body, if any.
    pub body: Option<(usize, usize)>,
}

/// Returns the index of the `}` matching the `{` at `open`, or the last
/// token index if unmatched.
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return open + off;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Returns the index of the `)` matching the `(` at `open`.
pub fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return open + off;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skips a generic parameter list starting at a `<` token; returns the
/// index just past the matching `>`. `->` arrows inside `Fn() -> T`
/// bounds do not close the list.
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = i > 0 && toks[i - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// Extracts parameter names from the token span strictly inside a fn's
/// parens (`self` and sub-pattern names are skipped).
fn param_names(toks: &[Tok], pstart: usize, pend: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32; // (), [], <> nesting relative to the param list
    let mut i = pstart + 1;
    while i < pend {
        let t = &toks[i];
        if t.kind == Kind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') | Some(b'[') | Some(b'<') => depth += 1,
                Some(b')') | Some(b']') => depth -= 1,
                Some(b'>') if !(i > 0 && toks[i - 1].is_punct('-')) => depth -= 1,
                _ => {}
            }
        } else if depth == 0
            && t.kind == Kind::Ident
            && t.text != "self"
            && t.text != "mut"
            && i + 1 < pend
            && toks[i + 1].is_punct(':')
        {
            // `name: Type` at the top level of the list. A `::` path
            // (`std::fmt::Debug`) must not match: require the token
            // before to be `(`, `,`, `mut`, or `&` — i.e. pattern
            // position, not type position.
            let prev = &toks[i - 1];
            let pattern_pos = prev.is_punct('(')
                || prev.is_punct(',')
                || prev.is_ident("mut")
                || prev.is_punct('&');
            let double_colon = i + 2 < pend && toks[i + 2].is_punct(':');
            if pattern_pos && !double_colon {
                out.push(t.text.clone());
            }
        }
        i += 1;
    }
    out
}

/// Parses every `fn` item in `sf` (which has file-table index
/// `file_idx`), tracking test regions.
pub fn parse_fns(sf: &SourceFile, file_idx: usize) -> Vec<FnItem> {
    let toks = &sf.toks;
    let mut fns = Vec::new();
    let mut depth = 0i32;
    let mut test_mods: Vec<i32> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') {
            // Attribute: `#[...]` records its idents; `#![...]` is inner
            // and ignored.
            let inner = i + 1 < toks.len() && toks[i + 1].is_punct('!');
            let open = i + if inner { 2 } else { 1 };
            if open < toks.len() && toks[open].is_punct('[') {
                let mut bdepth = 0i32;
                let mut j = open;
                while j < toks.len() {
                    if toks[j].is_punct('[') {
                        bdepth += 1;
                    } else if toks[j].is_punct(']') {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    } else if !inner && toks[j].kind == Kind::Ident {
                        pending_attrs.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            if test_mods.last() == Some(&depth) {
                test_mods.pop();
            }
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if t.is_ident("mod") {
            let cfg_test = pending_attrs.iter().any(|a| a == "cfg")
                && pending_attrs.iter().any(|a| a == "test");
            if cfg_test && i + 2 < toks.len() && toks[i + 2].is_punct('{') {
                test_mods.push(depth);
            }
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == Kind::Ident {
            let name_idx = i + 1;
            let is_test = sf.is_test_file
                || !test_mods.is_empty()
                || pending_attrs.iter().any(|a| a == "test");
            pending_attrs.clear();
            let mut j = name_idx + 1;
            if j < toks.len() && toks[j].is_punct('<') {
                j = skip_generics(toks, j);
            }
            // Find the parameter list.
            while j < toks.len() && !toks[j].is_punct('(') {
                j += 1;
            }
            if j >= toks.len() {
                break;
            }
            let pend = match_paren(toks, j);
            let params = param_names(toks, j, pend);
            // Find the body `{` or a `;` (trait method without default).
            let mut k = pend + 1;
            let mut bracket = 0i32;
            let mut body = None;
            while k < toks.len() {
                let tk = &toks[k];
                if tk.is_punct('[') {
                    bracket += 1;
                } else if tk.is_punct(']') {
                    bracket -= 1;
                } else if tk.is_punct('<') {
                    // `-> Result<(), E>` — skip so a `;`-free generic
                    // can't confuse the scan (no `;` appears in generics
                    // anyway, but `{` can via `Fn() -> T` closures? no —
                    // keep it simple and only skip balanced angles).
                    k = skip_generics(toks, k);
                    continue;
                } else if tk.is_punct(';') && bracket == 0 {
                    break;
                } else if tk.is_punct('{') {
                    body = Some((k, match_brace(toks, k)));
                    break;
                }
                k += 1;
            }
            fns.push(FnItem {
                name: toks[name_idx].text.clone(),
                file: file_idx,
                line: toks[name_idx].line,
                is_test,
                params,
                body,
            });
            // Resume at the body `{` (or past the signature) so nested
            // fns and depth tracking both see the body tokens.
            i = body.map(|(b, _)| b).unwrap_or(k.max(pend + 1));
            continue;
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/x/src/lib.rs".into(),
            krate: "x".into(),
            toks: lex(src),
            is_test_file: false,
        }
    }

    #[test]
    fn finds_fns_with_generics_wheres_and_bodies() {
        let sf = file(
            "pub fn a<T: Ord, F: Fn() -> u32>(x: T, mut y: F) -> Vec<T> where T: Clone { inner() }\n\
             fn b(&self, n: usize) -> [u8; 4];\n\
             fn c() {}\n",
        );
        let fns = parse_fns(&sf, 0);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(fns[0].params, vec!["x", "y"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_none(), "trait method without default");
        assert_eq!(fns[1].params, vec!["n"]);
    }

    #[test]
    fn cfg_test_mods_and_test_attrs_mark_fns() {
        let sf = file(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t1() {}\n  fn helper() {}\n}\n\
             #[test]\nfn t2() {}\n\
             fn real2() {}\n",
        );
        let fns = parse_fns(&sf, 0);
        let flags: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("real", false),
                ("t1", true),
                ("helper", true),
                ("t2", true),
                ("real2", false)
            ]
        );
    }

    #[test]
    fn nested_fns_and_impl_methods_are_found() {
        let sf = file(
            "impl Core {\n  fn outer(&self) { fn nested() {} nested(); }\n}\n\
             trait T { fn defaulted(&self) { body(); } }\n",
        );
        let fns = parse_fns(&sf, 0);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "nested", "defaulted"]);
    }

    #[test]
    fn body_spans_match_braces() {
        let sf = file("fn f() { if x { y(); } else { z(); } } fn g() {}");
        let fns = parse_fns(&sf, 0);
        let (b0, e0) = fns[0].body.expect("f has a body");
        assert!(sf.toks[b0].is_punct('{') && sf.toks[e0].is_punct('}'));
        // g's body must start after f's ends.
        let (b1, _) = fns[1].body.expect("g has a body");
        assert!(b1 > e0);
    }
}
