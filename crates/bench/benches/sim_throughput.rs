//! Simulator-throughput benchmarks: events per second through the cache
//! hierarchy, the branch predictor, and a full instrumented kernel — the
//! regression watch that keeps the figure harnesses runnable.
//!
//! Plain `harness = false` binary (no external benchmark framework) so the
//! workspace builds offline; see `cobra_bench::timing`.

use cobra_bench::timing::bench;
use cobra_graph::gen;
use cobra_kernels::{run, Input, KernelId, ModeSpec};
use cobra_sim::engine::{Engine, SimEngine};
use cobra_sim::MachineConfig;

const SAMPLES: usize = 10;

fn bench_hierarchy() {
    let n: u64 = 200_000;
    println!("sim_events");

    bench("irregular_loads", n, SAMPLES, || {
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let a = e.alloc("data", 1 << 24);
        let mut x = 1u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.load(a.addr(8, x % (1 << 21)), 8);
        }
        e.finish()
    });

    bench("streaming_loads", n, SAMPLES, || {
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let a = e.alloc("data", n * 8);
        for i in 0..n {
            e.load(a.addr(8, i), 8);
        }
        e.finish()
    });

    bench("branches", n, SAMPLES, || {
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let mut x = 1u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.branch(0x10, x & 3 == 0);
        }
        e.finish()
    });
    println!();
}

fn bench_full_kernel() {
    let input = Input::graph(gen::rmat(15, 4, 3));
    let machine = MachineConfig::hpca22();
    println!("instrumented_kernel");
    let n = input.num_updates(KernelId::DegreeCount);

    bench("degree_count_baseline", n, SAMPLES, || {
        run(KernelId::DegreeCount, &input, &ModeSpec::Baseline, &machine)
    });
    bench("degree_count_cobra", n, SAMPLES, || {
        run(
            KernelId::DegreeCount,
            &input,
            &ModeSpec::cobra_default(),
            &machine,
        )
    });
}

fn main() {
    bench_hierarchy();
    bench_full_kernel();
}
