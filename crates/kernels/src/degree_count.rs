//! Degree-Count: the first kernel of Edgelist→CSR conversion (GAP).
//!
//! Streams the edge list and increments `degrees[dst]` — a commutative
//! irregular update (keys span all vertex IDs).

use crate::common::{stream_edges, EdgeListAddrs};
use cobra_core::{count_bin_tuples, PbBackend};
use cobra_graph::EdgeList;
use cobra_sim::engine::Engine;

/// Tuple size: 4 B (key only; the increment carries no payload).
pub const TUPLE_BYTES: u32 = 4;

/// Native (uninstrumented) reference.
pub fn reference(el: &EdgeList) -> Vec<u32> {
    el.reversed().degrees()
}

/// Baseline execution: direct irregular increments.
pub fn baseline<E: Engine>(e: &mut E, el: &EdgeList) -> Vec<u32> {
    let nv = el.num_vertices() as usize;
    let addrs = EdgeListAddrs::alloc(e, el);
    let deg = e.alloc("degrees", nv.max(1) as u64 * 4);
    let mut degrees = vec![0u32; nv];
    e.phase(cobra_core::exec::phases::MAIN);
    stream_edges(e, el, addrs, |e, edge| {
        e.load(deg.addr(4, edge.dst as u64), 4);
        e.alu(1);
        e.store(deg.addr(4, edge.dst as u64), 4);
        degrees[edge.dst as usize] += 1;
    });
    degrees
}

/// Propagation-Blocking execution over any binning backend (software PB or
/// COBRA): Init counts per-bin tuples, Binning routes `(dst)` keys,
/// Accumulate applies the increments bin by bin.
pub fn pb<B: PbBackend<()>>(b: &mut B, el: &EdgeList) -> Vec<u32> {
    let nv = el.num_vertices() as usize;
    let addrs = EdgeListAddrs::alloc(b.engine(), el);
    let deg = b.engine().alloc("degrees", nv.max(1) as u64 * 4);
    let mut degrees = vec![0u32; nv];

    b.engine().phase(cobra_core::exec::phases::INIT);
    let shift = b.bin_shift();
    let nbins = b.num_bins();
    let counts = {
        let edges = el.edges();
        count_bin_tuples(b.engine(), edges.len(), shift, nbins, |e, i| {
            e.load(addrs.edges.addr(8, i as u64), 8);
            edges[i].dst
        })
    };
    b.presize(&counts);

    b.engine().phase(cobra_core::exec::phases::BINNING);
    for (i, &edge) in el.edges().iter().enumerate() {
        b.engine().load(addrs.edges.addr(8, i as u64), 8);
        b.engine().alu(1);
        b.engine()
            .branch(crate::common::pc::STREAM_LOOP, i + 1 < el.num_edges());
        b.insert(edge.dst, ());
    }
    let storage = b.flush_and_take();

    b.engine().phase(cobra_core::exec::phases::ACCUMULATE);
    let e = b.engine();
    let mut iter = storage.iter().peekable();
    while let Some((addr, key, _)) = iter.next() {
        e.load(addr, TUPLE_BYTES);
        e.load(deg.addr(4, key as u64), 4);
        e.alu(1);
        e.store(deg.addr(4, key as u64), 4);
        e.branch(crate::common::pc::STREAM_LOOP, iter.peek().is_some());
        degrees[key as usize] += 1;
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_graph::gen;
    use cobra_sim::engine::{NullEngine, SimEngine};
    use cobra_sim::MachineConfig;

    fn input() -> EdgeList {
        gen::rmat(10, 8, 17)
    }

    #[test]
    fn baseline_matches_reference() {
        let el = input();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &el), reference(&el));
    }

    #[test]
    fn pb_software_matches_reference() {
        let el = input();
        let mut b = SwPb::<_, ()>::new(
            NullEngine::new(),
            el.num_vertices(),
            64,
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        assert_eq!(pb(&mut b, &el), reference(&el));
    }

    #[test]
    fn pb_cobra_matches_reference() {
        let el = input();
        let mut m = CobraMachine::<()>::with_defaults(
            MachineConfig::hpca22(),
            el.num_vertices(),
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        assert_eq!(pb(&mut m, &el), reference(&el));
    }

    #[test]
    fn instrumented_baseline_has_poor_l1_locality() {
        let el = gen::uniform_random(1 << 17, 1 << 19, 5);
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let _ = baseline(&mut e, &el);
        let r = e.finish();
        // The degree array (512 KB) far exceeds L1: the irregular update
        // loads should miss L1 frequently.
        assert!(
            r.mem.l1d.miss_rate() > 0.15,
            "miss rate {}",
            r.mem.l1d.miss_rate()
        );
    }

    #[test]
    fn phases_are_reported() {
        let el = gen::uniform_random(1 << 12, 1 << 14, 9);
        let mut b = SwPb::<_, ()>::new(
            SimEngine::new(MachineConfig::hpca22()),
            el.num_vertices(),
            64,
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        let _ = pb(&mut b, &el);
        let r = b.into_engine().finish();
        for name in ["init", "binning", "accumulate"] {
            assert!(r.phase(name).is_some(), "missing phase {name}");
        }
    }
}
