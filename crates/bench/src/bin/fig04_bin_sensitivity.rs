//! Figure 4: sensitivity of software PB to the number of bins.
//!
//! 4a: Binning and Accumulate cycles as the bin count sweeps over powers of
//! two. 4b: the per-phase load-miss breakdown (L2 / LLC / DRAM accesses)
//! explaining it: Binning degrades once the C-Buffers outgrow L1/L2, while
//! Accumulate improves until one bin's data fits in L1.

#![forbid(unsafe_code)]

use cobra_bench::{inputs, report, Scale, Table};
use cobra_core::exec::phases;
use cobra_kernels::{bin_choices, run, KernelId, ModeSpec};
use cobra_sim::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let kernel = KernelId::NeighborPopulate;
    let ni = inputs::representative_input(kernel, scale);
    let choices = bin_choices(kernel, &ni.input, &machine);
    println!(
        "kernel: {} on {} | operating points: binning-ideal {}, sweet {}, accumulate-ideal {}",
        kernel.name(),
        ni.name,
        choices.binning_ideal,
        choices.sweet_spot,
        choices.accumulate_ideal
    );

    let mut t = Table::new(
        "Figure 4a/4b: PB phase cycles and load-miss breakdown vs number of bins",
        &[
            "bins",
            "binning Mcycles",
            "accumulate Mcycles",
            "total Mcycles",
            "bin L2-hits",
            "bin LLC-hits",
            "bin DRAM",
            "acc L2-hits",
            "acc LLC-hits",
            "acc DRAM",
        ],
    );

    // Sweep from well below the binning ideal to well past the accumulate
    // ideal (clamped to the key domain).
    let lo = (choices.binning_ideal / 4).max(1);
    let hi = choices.accumulate_ideal * 16;
    let mut bins = lo;
    while bins <= hi {
        let out = run(
            kernel,
            &ni.input,
            &ModeSpec::PbSw { min_bins: bins },
            &machine,
        );
        let m = &out.metrics;
        let bp = m.result.phase(phases::BINNING).expect("binning phase");
        let ap = m
            .result
            .phase(phases::ACCUMULATE)
            .expect("accumulate phase");
        let mc = |c: u64| format!("{:.1}", c as f64 / 1e6);
        t.row(vec![
            bins.to_string(),
            mc(bp.core.cycles),
            mc(ap.core.cycles),
            mc(m.cycles()),
            (bp.mem.l2.hits).to_string(),
            (bp.mem.llc.hits).to_string(),
            (bp.mem.llc.misses).to_string(),
            (ap.mem.l2.hits).to_string(),
            (ap.mem.llc.hits).to_string(),
            (ap.mem.llc.misses).to_string(),
        ]);
        eprintln!("[done] bins={bins}");
        bins *= 4;
    }
    t.print();
    t.write_csv("fig04_bin_sensitivity");
    println!(
        "\nShape check (paper Fig. 4): Binning cycles rise with bin count (C-Buffers\n\
         spill to L2/LLC); Accumulate cycles fall (per-bin range shrinks into L1);\n\
         the best total sits between the two ideals."
    );
}
