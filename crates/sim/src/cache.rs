//! Set-associative cache model with LRU, Bit-PLRU and DRRIP replacement and
//! Intel-CAT-style way reservation.
//!
//! The cache operates on *line addresses* (byte address >> 6). It tracks tag,
//! valid, dirty and per-policy replacement metadata, and supports reserving
//! the low ways of every set (used by COBRA to pin C-Buffers: reserved ways
//! are removed from normal allocation, shrinking the effective capacity seen
//! by other data).

use crate::stats::CacheStats;

/// Replacement policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used.
    Lru,
    /// Bit-PLRU (MRU bits), as in the paper's L1/L2.
    BitPlru,
    /// Dynamic RRIP with set dueling (SRRIP vs BRRIP), as in the paper's LLC.
    Drrip,
}

/// A line evicted by a fill, reported to the caller so it can be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address (byte address >> 6) of the victim.
    pub line_addr: u64,
    /// Whether the victim held modified data.
    pub dirty: bool,
}

const RRPV_MAX: u8 = 3;
const PSEL_MAX: i32 = 1023;
/// One in `BRRIP_EPSILON` BRRIP insertions uses the long RRPV.
const BRRIP_EPSILON: u64 = 32;
/// Constituency size for DRRIP set dueling.
const DUEL_MOD: u64 = 32;

/// A single set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: u32,
    replacement: Replacement,
    reserved_ways: u32,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    prefetched: Vec<bool>,
    // Replacement metadata (only the fields for the active policy are used).
    stamp: Vec<u64>,
    mru: Vec<bool>,
    rrpv: Vec<u8>,
    clock: u64,
    psel: i32,
    brrip_ctr: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: u64, ways: u32, replacement: Replacement) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        let n = (sets * ways as u64) as usize;
        Cache {
            sets,
            ways,
            replacement,
            reserved_ways: 0,
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            prefetched: vec![false; n],
            stamp: vec![0; n],
            mru: vec![false; n],
            rrpv: vec![RRPV_MAX; n],
            clock: 0,
            psel: PSEL_MAX / 2,
            brrip_ctr: 0,
            stats: CacheStats::default(),
        }
    }

    /// Builds a cache from a [`CacheConfig`](crate::config::CacheConfig).
    pub fn from_config(cfg: &crate::config::CacheConfig) -> Self {
        Self::new(cfg.sets(), cfg.ways, cfg.replacement)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Currently reserved (pinned) ways per set.
    pub fn reserved_ways(&self) -> u32 {
        self.reserved_ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reserves the low `n` ways of every set (evicting whatever they hold),
    /// removing them from normal allocation. Returns the number of dirty
    /// lines displaced (the caller accounts for their writeback traffic).
    ///
    /// # Panics
    ///
    /// Panics if `n >= ways` (at least one way must remain for normal data).
    pub fn set_reserved_ways(&mut self, n: u32) -> u64 {
        assert!(n < self.ways, "cannot reserve all ways");
        let mut displaced_dirty = 0;
        if n > self.reserved_ways {
            for set in 0..self.sets {
                for way in self.reserved_ways..n {
                    let i = self.slot(set, way);
                    if self.valid[i] {
                        if self.dirty[i] {
                            displaced_dirty += 1;
                            self.stats.writebacks += 1;
                        }
                        self.valid[i] = false;
                        self.dirty[i] = false;
                        self.prefetched[i] = false;
                    }
                }
            }
        }
        self.reserved_ways = n;
        displaced_dirty
    }

    #[inline]
    fn slot(&self, set: u64, way: u32) -> usize {
        (set * self.ways as u64 + way as u64) as usize
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> u64 {
        line_addr & (self.sets - 1)
    }

    /// Looks up `line_addr` without changing any state or statistics.
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        (self.reserved_ways..self.ways).any(|w| {
            let i = self.slot(set, w);
            self.valid[i] && self.tags[i] == line_addr
        })
    }

    /// Demand access. On a hit updates replacement state (and the dirty bit
    /// if `is_write`) and returns `true`; on a miss returns `false` without
    /// allocating (call [`fill`](Self::fill) to bring the line in).
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> bool {
        let set = self.set_of(line_addr);
        for way in self.reserved_ways..self.ways {
            let i = self.slot(set, way);
            if self.valid[i] && self.tags[i] == line_addr {
                self.stats.hits += 1;
                if self.prefetched[i] {
                    self.stats.prefetch_useful += 1;
                    self.prefetched[i] = false;
                }
                if is_write {
                    self.dirty[i] = true;
                }
                self.touch(set, way);
                return true;
            }
        }
        self.stats.misses += 1;
        if let Some(duel) = self.duel_role(set) {
            // A miss in a leader set votes against that leader's policy.
            match duel {
                DuelRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                DuelRole::BrripLeader => self.psel = (self.psel - 1).max(0),
            }
        }
        false
    }

    /// Inserts `line_addr` (after a miss), evicting a victim if necessary.
    /// `dirty` marks the line modified on arrival (write-allocate);
    /// `prefetch` marks a prefetcher fill (affects statistics only).
    ///
    /// Returns the evicted line, if any. Filling a line that is already
    /// present only updates its flags.
    pub fn fill(&mut self, line_addr: u64, dirty: bool, prefetch: bool) -> Option<Evicted> {
        let set = self.set_of(line_addr);
        // Already present (e.g. racing prefetch): just merge flags.
        for way in self.reserved_ways..self.ways {
            let i = self.slot(set, way);
            if self.valid[i] && self.tags[i] == line_addr {
                self.dirty[i] |= dirty;
                return None;
            }
        }
        let way = self.victim(set);
        let i = self.slot(set, way);
        let evicted = if self.valid[i] {
            let ev = Evicted {
                line_addr: self.tags[i],
                dirty: self.dirty[i],
            };
            if ev.dirty {
                self.stats.writebacks += 1;
            }
            Some(ev)
        } else {
            None
        };
        self.tags[i] = line_addr;
        self.valid[i] = true;
        self.dirty[i] = dirty;
        self.prefetched[i] = prefetch;
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        self.insert_meta(set, way);
        evicted
    }

    /// Removes `line_addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let set = self.set_of(line_addr);
        for way in self.reserved_ways..self.ways {
            let i = self.slot(set, way);
            if self.valid[i] && self.tags[i] == line_addr {
                self.valid[i] = false;
                self.prefetched[i] = false;
                let d = self.dirty[i];
                self.dirty[i] = false;
                return Some(d);
            }
        }
        None
    }

    /// Number of valid lines currently resident (unreserved ways).
    pub fn occupancy(&self) -> u64 {
        let mut n = 0;
        for set in 0..self.sets {
            for way in self.reserved_ways..self.ways {
                if self.valid[self.slot(set, way)] {
                    n += 1;
                }
            }
        }
        n
    }

    // ---- replacement internals ----

    fn duel_role(&self, set: u64) -> Option<DuelRole> {
        if self.replacement != Replacement::Drrip {
            return None;
        }
        match set % DUEL_MOD {
            0 => Some(DuelRole::SrripLeader),
            1 => Some(DuelRole::BrripLeader),
            _ => None,
        }
    }

    fn touch(&mut self, set: u64, way: u32) {
        let i = self.slot(set, way);
        match self.replacement {
            Replacement::Lru => {
                self.clock += 1;
                self.stamp[i] = self.clock;
            }
            Replacement::BitPlru => self.set_mru(set, way),
            Replacement::Drrip => self.rrpv[i] = 0,
        }
    }

    fn insert_meta(&mut self, set: u64, way: u32) {
        let i = self.slot(set, way);
        match self.replacement {
            Replacement::Lru => {
                self.clock += 1;
                self.stamp[i] = self.clock;
            }
            Replacement::BitPlru => self.set_mru(set, way),
            Replacement::Drrip => {
                let use_brrip = match self.duel_role(set) {
                    Some(DuelRole::SrripLeader) => false,
                    Some(DuelRole::BrripLeader) => true,
                    // Follower sets obey PSEL: high PSEL means SRRIP misses
                    // more, so followers use BRRIP.
                    None => self.psel > PSEL_MAX / 2,
                };
                self.rrpv[i] = if use_brrip {
                    self.brrip_ctr += 1;
                    if self.brrip_ctr.is_multiple_of(BRRIP_EPSILON) {
                        RRPV_MAX - 1
                    } else {
                        RRPV_MAX
                    }
                } else {
                    RRPV_MAX - 1
                };
            }
        }
    }

    fn set_mru(&mut self, set: u64, way: u32) {
        let i = self.slot(set, way);
        self.mru[i] = true;
        let all_set = (self.reserved_ways..self.ways).all(|w| self.mru[self.slot(set, w)]);
        if all_set {
            for w in self.reserved_ways..self.ways {
                if w != way {
                    let j = self.slot(set, w);
                    self.mru[j] = false;
                }
            }
        }
    }

    fn victim(&mut self, set: u64) -> u32 {
        // Prefer an invalid way.
        for way in self.reserved_ways..self.ways {
            if !self.valid[self.slot(set, way)] {
                return way;
            }
        }
        match self.replacement {
            Replacement::Lru => {
                let mut best = self.reserved_ways;
                let mut best_stamp = u64::MAX;
                for way in self.reserved_ways..self.ways {
                    let s = self.stamp[self.slot(set, way)];
                    if s < best_stamp {
                        best_stamp = s;
                        best = way;
                    }
                }
                best
            }
            Replacement::BitPlru => {
                for way in self.reserved_ways..self.ways {
                    if !self.mru[self.slot(set, way)] {
                        return way;
                    }
                }
                // All MRU bits set cannot persist (set_mru clears), but be safe.
                self.reserved_ways
            }
            Replacement::Drrip => loop {
                for way in self.reserved_ways..self.ways {
                    if self.rrpv[self.slot(set, way)] == RRPV_MAX {
                        return way;
                    }
                }
                for way in self.reserved_ways..self.ways {
                    let i = self.slot(set, way);
                    self.rrpv[i] = self.rrpv[i].saturating_add(1).min(RRPV_MAX);
                }
            },
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    SrripLeader,
    BrripLeader,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru2() -> Cache {
        Cache::new(1, 2, Replacement::Lru)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = lru2();
        assert!(!c.access(10, false));
        assert_eq!(c.fill(10, false, false), None);
        assert!(c.access(10, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = lru2();
        c.access(1, false);
        c.fill(1, false, false);
        c.access(2, false);
        c.fill(2, false, false);
        c.access(1, false); // 2 is now LRU
        c.access(3, false);
        let ev = c.fill(3, false, false).unwrap();
        assert_eq!(ev.line_addr, 2);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = lru2();
        c.fill(1, true, false);
        c.fill(2, false, false);
        let ev = c.fill(3, false, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line_addr, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_access_marks_dirty() {
        let mut c = lru2();
        c.fill(1, false, false);
        c.access(1, true);
        c.fill(2, false, false);
        let ev = c.fill(3, false, false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn bit_plru_victims_cycle() {
        let mut c = Cache::new(1, 4, Replacement::BitPlru);
        for a in 0..4 {
            c.fill(a, false, false);
        }
        // All four lines present; touching all wraps MRU bits so that the
        // last-touched keeps its bit.
        for a in 0..4 {
            assert!(c.access(a, false));
        }
        let ev = c.fill(100, false, false).unwrap();
        assert_ne!(ev.line_addr, 3, "most recently used line must survive");
    }

    #[test]
    fn drrip_basic_reuse_survives_scan() {
        let mut c = Cache::new(64, 4, Replacement::Drrip);
        // Touch a small working set repeatedly, then scan a large range once;
        // the working set should mostly survive (RRIP is scan-resistant).
        let ws: Vec<u64> = (0..64).collect();
        for _ in 0..8 {
            for &a in &ws {
                if !c.access(a, false) {
                    c.fill(a, false, false);
                }
            }
        }
        // Scan interleaved with periodic working-set reuse: RRIP keeps the
        // reused lines near RRPV 0 while scan lines enter at distant RRPV.
        for (k, a) in (1000..3000u64).enumerate() {
            if !c.access(a, false) {
                c.fill(a, false, false);
            }
            if k % 128 == 0 {
                for &w in &ws {
                    if !c.access(w, false) {
                        c.fill(w, false, false);
                    }
                }
            }
        }
        let survivors = ws.iter().filter(|&&a| c.probe(a)).count();
        assert!(
            survivors > 32,
            "only {survivors}/64 of working set survived scan"
        );
    }

    #[test]
    fn reserved_ways_shrink_capacity() {
        let mut c = Cache::new(1, 4, Replacement::Lru);
        for a in 0..4 {
            c.fill(a, false, false);
        }
        assert_eq!(c.occupancy(), 4);
        c.set_reserved_ways(2);
        assert_eq!(c.occupancy(), 2);
        // Only 2 ways usable now.
        c.fill(10, false, false);
        c.fill(11, false, false);
        assert_eq!(c.occupancy(), 2);
        assert!(c.probe(10) || c.probe(11));
    }

    #[test]
    fn reserving_dirty_ways_counts_writebacks() {
        let mut c = Cache::new(1, 4, Replacement::Lru);
        c.fill(0, true, false);
        c.fill(1, true, false);
        c.fill(2, false, false);
        let displaced = c.set_reserved_ways(3);
        assert_eq!(displaced, 2);
    }

    #[test]
    #[should_panic]
    fn cannot_reserve_all_ways() {
        let mut c = Cache::new(1, 4, Replacement::Lru);
        c.set_reserved_ways(4);
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut c = lru2();
        c.fill(7, true, false);
        assert_eq!(c.invalidate(7), Some(true));
        assert_eq!(c.invalidate(7), None);
        assert!(!c.probe(7));
    }

    #[test]
    fn probe_does_not_change_stats() {
        let mut c = lru2();
        c.fill(1, false, false);
        let before = c.stats();
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn refill_of_present_line_merges_dirty() {
        let mut c = lru2();
        c.fill(1, false, true);
        assert_eq!(c.fill(1, true, false), None);
        c.fill(2, false, false);
        let ev = c.fill(3, false, false).unwrap();
        assert!(ev.dirty, "merged dirty bit lost");
    }

    #[test]
    fn prefetch_fill_then_demand_hit_counts_useful() {
        let mut c = lru2();
        c.fill(5, false, true);
        assert!(c.access(5, false));
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_useful, 1);
    }
}
