//! Bounded exhaustive schedule exploration (mini-loom, no deps) of the
//! `cobra-stream` channel/seal/epoch protocol.
//!
//! The explorer runs a faithful executable model of the protocol — the
//! bounded FIFO of `channel.rs` (mutex + two condvars with explicit wait
//! sets), the seal broadcast of `pipeline.rs` (epoch counter under the
//! seal lock, marker sent through the same FIFO as data), the shard
//! worker loop of `shard.rs`, and the accumulator of `epoch.rs` — through
//! **every** interleaving of small scenarios (2–3 producers, capacity 1–2
//! queues) via DFS over explicit states with memoization.
//!
//! Condvars are modelled with real wait sets: a blocked thread is only
//! runnable again after a matching `notify`, and `notify_one` branches
//! over each possible wakee. Lost-wakeup bugs therefore show up as
//! deadlocks (a non-empty wait set with no runnable thread), which the
//! self-test provokes deliberately with a `notify_one`-on-drop mutation.
//!
//! Invariants asserted at every state / terminal state:
//! * queue occupancy never exceeds capacity;
//! * per-producer batch order is preserved end-to-end (FIFO);
//! * **epoch-snapshot-equals-batch**: when the worker processes `Seal(e)`
//!   it has binned exactly the tuples enqueued before the `e`-th marker,
//!   and the accumulator's running total at epoch `e` equals that count;
//! * epochs are applied in aligned order `1, 2, 3, …`;
//! * no deadlock, and every thread terminates.

use std::collections::HashSet;

/// A producer-script operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum POp {
    /// Send a batch of `n` tuples (blocking).
    Send(u8),
    /// Seal an epoch: take the seal lock, broadcast the marker, release.
    Seal,
}

/// One bounded scenario to exhaust.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Data-FIFO capacity (producers/main → worker).
    pub cap_data: usize,
    /// Accumulator-FIFO capacity (worker → accumulator).
    pub cap_acc: usize,
    /// Producer scripts.
    pub producers: Vec<Vec<POp>>,
    /// If set, the worker exits (dropping both channel ends) after
    /// consuming this many messages — the receiver-drop-mid-epoch case.
    pub worker_exit_after: Option<u8>,
    /// Mutation for the self-test: receiver drop wakes only one blocked
    /// sender (`notify_one` instead of `notify_all`) — a lost-wakeup bug
    /// the explorer must expose as a deadlock.
    pub buggy_drop_notify_one: bool,
    /// Assert conservation (every enqueued tuple applied) at exit; off for
    /// crash scenarios where losing queued tuples is expected.
    pub strict_totals: bool,
}

/// A message in the data FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Msg {
    Batch { from: u8, seq: u8, n: u8 },
    Seal(u8),
    Shutdown,
}

/// A message in the accumulator FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AMsg {
    Sealed { epoch: u8, delta: u8 },
    Done { delta: u8 },
}

/// A bounded FIFO with condvar wait sets, mirroring `channel.rs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Chan<M> {
    q: Vec<M>,
    cap: usize,
    senders: u8,
    receiver_alive: bool,
    /// Threads parked in `send` (cond `not_full`), sorted.
    wait_full: Vec<u8>,
    /// Threads parked in `recv` (cond `not_empty`), sorted.
    wait_empty: Vec<u8>,
}

impl<M: Clone> Chan<M> {
    fn new(cap: usize, senders: u8) -> Self {
        Chan {
            q: Vec::new(),
            cap,
            senders,
            receiver_alive: true,
            wait_full: Vec::new(),
            wait_empty: Vec::new(),
        }
    }
}

fn park(set: &mut Vec<u8>, tid: u8) {
    if let Err(pos) = set.binary_search(&tid) {
        set.insert(pos, tid);
    }
}

/// Worker phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WPhase {
    Loop,
    SendSealed { epoch: u8, delta: u8 },
    SendDone { delta: u8 },
    Exited,
}

/// Producer run state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Prod {
    pc: u8,
    seq: u8,
    /// Epoch marker in flight while holding the seal lock.
    sealing: Option<u8>,
    done: bool,
}

/// Main-thread phases: join producers, broadcast shutdown, drop sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MPhase {
    Join,
    SendShutdown,
    Done,
}

/// One explicit protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    data: Chan<Msg>,
    acc: Chan<AMsg>,
    prods: Vec<Prod>,
    main: MPhase,
    worker: WPhase,
    /// Messages the worker has consumed (for `worker_exit_after`).
    worker_consumed: u8,
    /// Tuples binned by the worker, cumulative.
    cum_binned: u8,
    /// Tuples already shipped to the accumulator, cumulative.
    cum_shipped: u8,
    /// Highest per-producer sequence number seen by the worker.
    last_seq: Vec<Option<u8>>,
    /// Accumulator: epochs applied and running total.
    applied_epoch: u8,
    total: u8,
    acc_done: bool,
    /// Seal lock: holder tid and parked waiters.
    lock_holder: Option<u8>,
    lock_waiters: Vec<u8>,
    epochs_sealed: u8,
    /// `(epoch, cumulative tuples enqueued before its marker)`.
    expected: Vec<(u8, u8)>,
    /// Tuples enqueued into the data FIFO so far.
    enqueued: u8,
    /// Tuples bounced with `Disconnected`.
    bounced: u8,
}

/// Thread ids: 0 = worker, 1 = accumulator, 2.. = producers, last = main.
const WORKER: u8 = 0;
const ACCUM: u8 = 1;
const PROD0: u8 = 2;

/// An invariant violation or deadlock, with a human-readable description.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario that produced it.
    pub scenario: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.scenario, self.message)
    }
}

/// Exploration statistics for one scenario.
#[derive(Debug, Clone, Copy)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal (all-threads-done) states reached.
    pub terminals: usize,
}

struct Explorer<'a> {
    sc: &'a Scenario,
}

impl<'a> Explorer<'a> {
    fn violation(&self, msg: String) -> Violation {
        Violation {
            scenario: self.sc.name,
            message: msg,
        }
    }

    fn initial(&self) -> St {
        let p = self.sc.producers.len();
        St {
            // Senders on data: every producer plus main's handle.
            data: Chan::new(self.sc.cap_data, p as u8 + 1),
            // Sender on acc: the worker.
            acc: Chan::new(self.sc.cap_acc, 1),
            prods: vec![
                Prod {
                    pc: 0,
                    seq: 0,
                    sealing: None,
                    done: false
                };
                p
            ],
            main: MPhase::Join,
            worker: WPhase::Loop,
            worker_consumed: 0,
            cum_binned: 0,
            cum_shipped: 0,
            last_seq: vec![None; p],
            applied_epoch: 0,
            total: 0,
            acc_done: false,
            lock_holder: None,
            lock_waiters: Vec::new(),
            epochs_sealed: 0,
            expected: Vec::new(),
            enqueued: 0,
            bounced: 0,
        }
    }

    fn thread_count(&self) -> u8 {
        PROD0 + self.sc.producers.len() as u8 + 1
    }

    fn main_tid(&self) -> u8 {
        self.thread_count() - 1
    }

    fn is_parked(&self, st: &St, tid: u8) -> bool {
        st.data.wait_full.contains(&tid)
            || st.data.wait_empty.contains(&tid)
            || st.acc.wait_full.contains(&tid)
            || st.acc.wait_empty.contains(&tid)
            || st.lock_waiters.contains(&tid)
    }

    fn is_done(&self, st: &St, tid: u8) -> bool {
        match tid {
            WORKER => st.worker == WPhase::Exited,
            ACCUM => st.acc_done,
            t if t == self.main_tid() => st.main == MPhase::Done,
            t => st.prods[(t - PROD0) as usize].done,
        }
    }

    fn runnable(&self, st: &St, tid: u8) -> bool {
        if self.is_done(st, tid) || self.is_parked(st, tid) {
            return false;
        }
        if tid == self.main_tid() && st.main == MPhase::Join {
            // join() blocks until every producer thread has exited.
            return st.prods.iter().all(|p| p.done);
        }
        true
    }

    /// All successor states from scheduling `tid` for one protocol step.
    /// Nondeterminism (which parked thread a `notify_one` wakes) yields
    /// multiple successors.
    fn step(&self, st: &St, tid: u8) -> Result<Vec<St>, Violation> {
        match tid {
            WORKER => self.step_worker(st),
            ACCUM => self.step_accum(st),
            t if t == self.main_tid() => self.step_main(st),
            t => self.step_producer(st, (t - PROD0) as usize),
        }
    }

    /// `notify_one`: branch over every possible wakee (unparking it);
    /// an empty wait set is a silent no-op.
    fn notify_one<F: Fn(&mut St) -> &mut Vec<u8>>(&self, st: St, set: F) -> Vec<St> {
        let waiters = set(&mut st.clone()).clone();
        if waiters.is_empty() {
            return vec![st];
        }
        waiters
            .iter()
            .map(|&w| {
                let mut next = st.clone();
                set(&mut next).retain(|&x| x != w);
                next
            })
            .collect()
    }

    fn notify_all<F: Fn(&mut St) -> &mut Vec<u8>>(&self, mut st: St, set: F) -> St {
        set(&mut st).clear();
        st
    }

    fn step_producer(&self, st: &St, p: usize) -> Result<Vec<St>, Violation> {
        let tid = PROD0 + p as u8;
        let script = &self.sc.producers[p];
        let prod = &st.prods[p];

        // Mid-seal: the marker send is in progress while holding the lock.
        if let Some(epoch) = prod.sealing {
            return Ok(self.send_seal_marker(st, p, tid, epoch));
        }
        let Some(&op) = script.get(prod.pc as usize) else {
            // Script exhausted: drop this producer's sender handle.
            let mut next = st.clone();
            next.prods[p].done = true;
            next.data.senders -= 1;
            if next.data.senders == 0 {
                next = self.notify_all(next, |s| &mut s.data.wait_empty);
            }
            return Ok(vec![next]);
        };
        match op {
            POp::Send(n) => {
                if !st.data.receiver_alive {
                    // send() returns Err(Disconnected(batch)).
                    let mut next = st.clone();
                    next.bounced += n;
                    next.prods[p].pc += 1;
                    next.prods[p].seq += 1;
                    return Ok(vec![next]);
                }
                if st.data.q.len() >= st.data.cap {
                    let mut next = st.clone();
                    park(&mut next.data.wait_full, tid);
                    return Ok(vec![next]);
                }
                let mut next = st.clone();
                let msg = Msg::Batch {
                    from: p as u8,
                    seq: next.prods[p].seq,
                    n,
                };
                next.data.q.push(msg);
                if next.data.q.len() > next.data.cap {
                    return Err(
                        self.violation(format!("data queue exceeded capacity {}", next.data.cap))
                    );
                }
                next.enqueued += n;
                next.prods[p].pc += 1;
                next.prods[p].seq += 1;
                Ok(self.notify_one(next, |s| &mut s.data.wait_empty))
            }
            POp::Seal => {
                // pipeline.rs Core::seal — lock, count, send marker, unlock.
                match st.lock_holder {
                    Some(h) if h != tid => {
                        let mut next = st.clone();
                        park(&mut next.lock_waiters, tid);
                        Ok(vec![next])
                    }
                    Some(_) => unreachable!("non-reentrant seal lock"),
                    None => {
                        let mut next = st.clone();
                        next.lock_holder = Some(tid);
                        let epoch = next.epochs_sealed + 1;
                        next.epochs_sealed = epoch;
                        next.prods[p].sealing = Some(epoch);
                        Ok(self.send_seal_marker(&next, p, tid, epoch))
                    }
                }
            }
        }
    }

    /// The seal's marker send (run while holding the seal lock — blocking
    /// here keeps the lock held, exactly like the real `Core::seal`).
    fn send_seal_marker(&self, st: &St, p: usize, tid: u8, epoch: u8) -> Vec<St> {
        if st.data.receiver_alive && st.data.q.len() >= st.data.cap {
            let mut next = st.clone();
            park(&mut next.data.wait_full, tid);
            return vec![next];
        }
        let mut next = st.clone();
        if next.data.receiver_alive {
            next.data.q.push(Msg::Seal(epoch));
            next.expected.push((epoch, next.enqueued));
        }
        // else: `let _ = tx.send(..)` — marker silently dropped.
        next.prods[p].sealing = None;
        next.prods[p].pc += 1;
        next.lock_holder = None;
        let mut out = Vec::new();
        // Unlock wakes one lock waiter (any of them), then the marker
        // enqueue wakes one not_empty waiter: branch over both choices.
        let after_unlock: Vec<St> = if next.lock_waiters.is_empty() {
            vec![next]
        } else {
            self.notify_one(next, |s| &mut s.lock_waiters)
        };
        for s in after_unlock {
            if s.data.receiver_alive {
                out.extend(self.notify_one(s, |x| &mut x.data.wait_empty));
            } else {
                out.push(s);
            }
        }
        out
    }

    fn step_main(&self, st: &St) -> Result<Vec<St>, Violation> {
        let tid = self.main_tid();
        match st.main {
            MPhase::Join => {
                // Runnable only once all producers are done (see runnable).
                let mut next = st.clone();
                next.main = MPhase::SendShutdown;
                Ok(vec![next])
            }
            MPhase::SendShutdown => {
                if !st.data.receiver_alive {
                    let mut next = st.clone();
                    next.main = MPhase::Done;
                    next.data.senders -= 1;
                    return Ok(vec![next]);
                }
                if st.data.q.len() >= st.data.cap {
                    let mut next = st.clone();
                    park(&mut next.data.wait_full, tid);
                    return Ok(vec![next]);
                }
                let mut next = st.clone();
                next.data.q.push(Msg::Shutdown);
                next.main = MPhase::Done;
                // Drop main's sender right after the shutdown marker.
                next.data.senders -= 1;
                let mut out = Vec::new();
                if next.data.senders == 0 {
                    out.push(self.notify_all(next, |s| &mut s.data.wait_empty));
                } else {
                    out.extend(self.notify_one(next, |s| &mut s.data.wait_empty));
                }
                Ok(out)
            }
            MPhase::Done => Ok(vec![st.clone()]),
        }
    }

    /// Worker drops both of its channel ends (on exit or crash).
    fn worker_drop_ends(&self, st: St) -> St {
        let mut next = st;
        next.worker = WPhase::Exited;
        // Drop the data Receiver: wake blocked senders.
        next.data.receiver_alive = false;
        if self.sc.buggy_drop_notify_one {
            // The seeded lost-wakeup bug: only one sender wakes.
            if let Some(&w) = next.data.wait_full.first() {
                next.data.wait_full.retain(|&x| x != w);
            }
        } else {
            next = self.notify_all(next, |s| &mut s.data.wait_full);
        }
        // Drop the acc Sender.
        next.acc.senders -= 1;
        if next.acc.senders == 0 {
            next = self.notify_all(next, |s| &mut s.acc.wait_empty);
        }
        next
    }

    fn step_worker(&self, st: &St) -> Result<Vec<St>, Violation> {
        match st.worker {
            WPhase::Exited => Ok(vec![st.clone()]),
            WPhase::SendSealed { epoch, delta } => {
                self.worker_send_acc(st, AMsg::Sealed { epoch, delta })
            }
            WPhase::SendDone { delta } => self.worker_send_acc(st, AMsg::Done { delta }),
            WPhase::Loop => {
                if let Some(limit) = self.sc.worker_exit_after {
                    if st.worker_consumed >= limit {
                        // Simulated crash: exit without draining or Done.
                        return Ok(vec![self.worker_drop_ends(st.clone())]);
                    }
                }
                if st.data.q.is_empty() {
                    if st.data.senders == 0 {
                        // recv() -> None: final drain then exit.
                        let mut next = st.clone();
                        let delta = next.cum_binned - next.cum_shipped;
                        next.worker = WPhase::SendDone { delta };
                        return Ok(vec![next]);
                    }
                    let mut next = st.clone();
                    park(&mut next.data.wait_empty, WORKER);
                    return Ok(vec![next]);
                }
                let mut next = st.clone();
                let msg = next.data.q.remove(0);
                next.worker_consumed += 1;
                match msg {
                    Msg::Batch { from, seq, n } => {
                        if let Some(prev) = next.last_seq[from as usize] {
                            if seq <= prev {
                                return Err(self.violation(format!(
                                    "producer {from} batches reordered: seq {seq} after {prev}"
                                )));
                            }
                        }
                        next.last_seq[from as usize] = Some(seq);
                        next.cum_binned += n;
                    }
                    Msg::Seal(epoch) => {
                        let Some(&(_, want)) = next.expected.iter().find(|&&(e, _)| e == epoch)
                        else {
                            return Err(self.violation(format!(
                                "worker saw Seal({epoch}) with no enqueue record"
                            )));
                        };
                        if next.cum_binned != want {
                            return Err(self.violation(format!(
                                "epoch {epoch} snapshot mismatch: binned {} tuples, \
                                 {want} were enqueued before the marker",
                                next.cum_binned
                            )));
                        }
                        let delta = next.cum_binned - next.cum_shipped;
                        next.worker = WPhase::SendSealed { epoch, delta };
                    }
                    Msg::Shutdown => {
                        let delta = next.cum_binned - next.cum_shipped;
                        next.worker = WPhase::SendDone { delta };
                    }
                }
                // Pop → notify_one(not_full), as in Receiver::recv.
                Ok(self.notify_one(next, |s| &mut s.data.wait_full))
            }
        }
    }

    fn worker_send_acc(&self, st: &St, msg: AMsg) -> Result<Vec<St>, Violation> {
        if !st.acc.receiver_alive {
            // Accumulator gone: worker ignores the error and keeps going
            // (shard.rs: "Accumulator-side disconnects are ignored").
            let mut next = st.clone();
            next.cum_shipped = next.cum_binned;
            next.worker = match msg {
                AMsg::Done { .. } => return Ok(vec![self.worker_drop_ends(next)]),
                _ => WPhase::Loop,
            };
            return Ok(vec![next]);
        }
        if st.acc.q.len() >= st.acc.cap {
            let mut next = st.clone();
            park(&mut next.acc.wait_full, WORKER);
            return Ok(vec![next]);
        }
        let mut next = st.clone();
        next.acc.q.push(msg);
        next.cum_shipped = next.cum_binned;
        let done = matches!(msg, AMsg::Done { .. });
        next.worker = WPhase::Loop;
        let mut out = Vec::new();
        for s in self.notify_one(next, |x| &mut x.acc.wait_empty) {
            if done {
                out.push(self.worker_drop_ends(s));
            } else {
                out.push(s);
            }
        }
        Ok(out)
    }

    fn step_accum(&self, st: &St) -> Result<Vec<St>, Violation> {
        if st.acc.q.is_empty() {
            if st.acc.senders == 0 {
                // recv() -> None: accumulator publishes its drain and exits.
                let mut next = st.clone();
                next.acc_done = true;
                next.acc.receiver_alive = false;
                next = self.notify_all(next, |s| &mut s.acc.wait_full);
                return Ok(vec![next]);
            }
            let mut next = st.clone();
            park(&mut next.acc.wait_empty, ACCUM);
            return Ok(vec![next]);
        }
        let mut next = st.clone();
        let msg = next.acc.q.remove(0);
        match msg {
            AMsg::Sealed { epoch, delta } => {
                if epoch != next.applied_epoch + 1 {
                    return Err(self.violation(format!(
                        "epoch wave misaligned: applied {} then got {epoch}",
                        next.applied_epoch
                    )));
                }
                next.applied_epoch = epoch;
                next.total += delta;
                if let Some(&(_, want)) = next.expected.iter().find(|&&(e, _)| e == epoch) {
                    if next.total != want {
                        return Err(self.violation(format!(
                            "epoch {epoch} published total {} != {want} tuples \
                             enqueued before its seal",
                            next.total
                        )));
                    }
                }
            }
            AMsg::Done { delta } => {
                next.total += delta;
            }
        }
        Ok(self.notify_one(next, |s| &mut s.acc.wait_full))
    }

    fn check_terminal(&self, st: &St) -> Result<(), Violation> {
        if self.sc.strict_totals {
            if st.cum_binned != st.enqueued {
                return Err(self.violation(format!(
                    "worker binned {} of {} enqueued tuples",
                    st.cum_binned, st.enqueued
                )));
            }
            if st.total != st.cum_binned {
                return Err(self.violation(format!(
                    "accumulator total {} != {} binned tuples",
                    st.total, st.cum_binned
                )));
            }
        } else if st.total > st.enqueued {
            return Err(self.violation(format!(
                "accumulator invented tuples: total {} > enqueued {}",
                st.total, st.enqueued
            )));
        }
        Ok(())
    }

    fn run(&self) -> Result<ExploreStats, Violation> {
        let mut visited: HashSet<St> = HashSet::new();
        let mut stack = vec![self.initial()];
        let mut terminals = 0usize;
        while let Some(st) = stack.pop() {
            if !visited.insert(st.clone()) {
                continue;
            }
            let runnable: Vec<u8> = (0..self.thread_count())
                .filter(|&t| self.runnable(&st, t))
                .collect();
            if runnable.is_empty() {
                let all_done = (0..self.thread_count()).all(|t| self.is_done(&st, t));
                if all_done {
                    terminals += 1;
                    self.check_terminal(&st)?;
                    continue;
                }
                let stuck: Vec<u8> = (0..self.thread_count())
                    .filter(|&t| !self.is_done(&st, t))
                    .collect();
                return Err(self.violation(format!(
                    "deadlock: threads {stuck:?} blocked with no runnable thread \
                     (lost wakeup or protocol hole)"
                )));
            }
            for tid in runnable {
                for next in self.step(&st, tid)? {
                    if !visited.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
        Ok(ExploreStats {
            states: visited.len(),
            terminals,
        })
    }
}

/// Explores one scenario exhaustively.
pub fn explore(sc: &Scenario) -> Result<ExploreStats, Violation> {
    Explorer { sc }.run()
}

/// The standard scenario suite: seal/data contention, seal racing blocked
/// sends, competing sealers through the lock, and receiver drops.
pub fn standard_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "two_producers_one_seal",
            cap_data: 1,
            cap_acc: 1,
            producers: vec![
                vec![POp::Send(1), POp::Send(1), POp::Seal],
                vec![POp::Send(1), POp::Send(1)],
            ],
            worker_exit_after: None,
            buggy_drop_notify_one: false,
            strict_totals: true,
        },
        Scenario {
            name: "seal_during_blocked_send",
            cap_data: 1,
            cap_acc: 1,
            producers: vec![
                vec![POp::Send(1), POp::Send(1), POp::Send(1)],
                vec![POp::Seal],
            ],
            worker_exit_after: None,
            buggy_drop_notify_one: false,
            strict_totals: true,
        },
        Scenario {
            name: "competing_sealers",
            cap_data: 1,
            cap_acc: 2,
            producers: vec![
                vec![POp::Send(1), POp::Seal, POp::Send(1)],
                vec![POp::Seal, POp::Send(1)],
            ],
            worker_exit_after: None,
            buggy_drop_notify_one: false,
            strict_totals: true,
        },
        Scenario {
            name: "capacity_two_pipelining",
            cap_data: 2,
            cap_acc: 1,
            producers: vec![
                vec![POp::Send(2), POp::Send(1), POp::Seal],
                vec![POp::Send(1), POp::Send(2)],
            ],
            worker_exit_after: None,
            buggy_drop_notify_one: false,
            strict_totals: true,
        },
        Scenario {
            name: "receiver_drop_mid_epoch",
            cap_data: 1,
            cap_acc: 1,
            producers: vec![
                vec![POp::Send(1), POp::Send(1), POp::Seal],
                vec![POp::Send(1)],
            ],
            worker_exit_after: Some(1),
            buggy_drop_notify_one: false,
            strict_totals: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scenarios_exhaust_cleanly() {
        for sc in standard_scenarios() {
            let stats = explore(&sc).unwrap_or_else(|v| panic!("{v}"));
            assert!(stats.states > 10, "{}: suspiciously small space", sc.name);
            assert!(stats.terminals > 0, "{}: no terminal state", sc.name);
        }
    }

    #[test]
    fn seeded_lost_wakeup_is_detected_as_deadlock() {
        // Two producers both end up blocked on the full FIFO; the buggy
        // receiver drop wakes only one; the other sleeps forever. The
        // explorer must find that schedule.
        let sc = Scenario {
            name: "buggy_drop_notify_one",
            cap_data: 1,
            cap_acc: 1,
            producers: vec![vec![POp::Send(1), POp::Send(1)], vec![POp::Send(1)]],
            worker_exit_after: Some(0),
            buggy_drop_notify_one: true,
            strict_totals: false,
        };
        let err = explore(&sc).expect_err("lost wakeup must deadlock some schedule");
        assert!(err.message.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn misaligned_epoch_would_be_caught() {
        // Sanity-check the checker: corrupt the expected table by hand and
        // confirm the worker-side assert fires. (Drive the model directly.)
        let sc = Scenario {
            name: "self_check",
            cap_data: 1,
            cap_acc: 1,
            producers: vec![vec![POp::Send(1), POp::Seal]],
            worker_exit_after: None,
            buggy_drop_notify_one: false,
            strict_totals: true,
        };
        let ex = Explorer { sc: &sc };
        let mut st = ex.initial();
        // Pretend a marker for epoch 1 was enqueued claiming 5 tuples.
        st.data.q.push(Msg::Seal(1));
        st.expected.push((1, 5));
        let err = ex
            .step_worker(&st)
            .expect_err("mismatched seal must violate");
        assert!(err.message.contains("snapshot mismatch"), "got: {err}");
    }
}
