//! cobra-wal: durable write-ahead log, epoch checkpoints, and crash
//! recovery for the COBRA streaming stack.
//!
//! The paper's Binning phase works because irregular updates are cheap to
//! *log sequentially* and expensive to apply in place; a WAL is the
//! durability-flavored twin of a bin — an append-only stream of
//! `(key, value)` updates replayed later with good locality. This crate
//! provides the three pieces the streaming pipeline needs:
//!
//! * [`record`] — length-prefixed, CRC32-protected records (`Update`,
//!   `Seal`, `EpochCommit`) with a *total* decoder: torn tails and
//!   bit-flips are truncation points, never panics.
//! * [`log`] — segmented append-only log directories with group-commit
//!   buffering, configurable [`SyncPolicy`], segment rotation, and a
//!   visitor-style [`scan`] that doubles as the recovery reader.
//! * [`checkpoint`] — atomic (temp file + rename) serialization of the
//!   accumulator's `Arc`'d copy-on-write segments plus the manifest
//!   (`epoch`, key geometry, per-shard WAL resume offsets).
//!
//! Everything is std-only: the workspace is dependency-free by policy,
//! including the [`crc32`] implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc32;
pub mod log;
pub mod record;
pub mod ship;

pub use checkpoint::{
    gc_checkpoints, latest_checkpoint, read_checkpoint, write_checkpoint, Checkpoint,
    CheckpointMeta, WalValue,
};
pub use crc32::crc32;
pub use log::{scan, LogPosition, ScanOutcome, SyncPolicy, WalConfig, WalStats, WalWriter};
pub use record::{decode_all, decode_at, DecodeStep, Record};
pub use ship::{checkpoint_files, read_chunk, segment_files, ShipFile};
