//! # cobra-kernels — the evaluated irregular-update workloads
//!
//! The nine kernels of the COBRA paper's evaluation (Section VI) plus a
//! propagation-blocked SpGEMM extension, each
//! implemented once, generic over the trace [`Engine`](cobra_sim::engine::Engine)
//! (baseline form) and once over the binning
//! [`PbBackend`](cobra_core::PbBackend) (PB form — the same code runs under
//! software PB and under COBRA):
//!
//! | module | kernel | domain | commutative |
//! |---|---|---|---|
//! | [`degree_count`] | Degree-Count | graph preprocessing | yes |
//! | [`neighbor_populate`] | Neighbor-Populate | graph preprocessing | **no** |
//! | [`pagerank`] | Pagerank | graph analytics | yes |
//! | [`radii`] | Radii | graph analytics | yes |
//! | [`int_sort`] | Integer Sort | sorting | **no** |
//! | [`spmv`] | SpMV | sparse linear algebra | yes |
//! | [`transpose`] | Transpose | sparse linear algebra | **no** |
//! | [`pinv`] | PINV | sparse linear algebra | **no** |
//! | [`symperm`] | SymPerm | sparse linear algebra | **no** |
//! | [`spgemm`] | SpGEMM (`A·A`) | sparse linear algebra | yes |
//!
//! [`tiling`] implements the CSR-Segmenting comparator (Figure 15) and the
//! multi-iteration Pagerank variants it is compared against. [`suite`]
//! provides the uniform kernel × input × mode dispatch used by the
//! benchmark harnesses. [`streaming`] rephrases Degree-Count and Pagerank
//! as continuous ingestion over `cobra-stream`'s sharded pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod common;
pub mod degree_count;
pub mod int_sort;
pub mod neighbor_populate;
pub mod pagerank;
pub mod pinv;
pub mod radii;
pub mod spgemm;
pub mod spmv;
pub mod streaming;
pub mod suite;
pub mod symperm;
pub mod tiling;
pub mod transpose;

pub use suite::{bin_choices, run, Input, KernelId, ModeSpec, RunOutcome, ALL_KERNELS};
