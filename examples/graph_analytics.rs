//! Graph-analytics walkthrough: the Edgelist→CSR preprocessing pipeline
//! (Degree-Count + the non-commutative Neighbor-Populate) and Pagerank,
//! each under Baseline, software PB, and COBRA — with the simulated
//! locality/speedup numbers the paper's evaluation is built from.
//!
//! Run with: `cargo run --release --example graph_analytics`

use cobra_repro::graph::gen;
use cobra_repro::kernels::{run, Input, KernelId, ModeSpec};
use cobra_repro::sim::MachineConfig;

fn main() {
    // A scaled power-law graph (the paper's DBP/TWIT class).
    let scale = 18; // 262k vertices
    let el = gen::rmat(scale, 8, 42);
    println!(
        "input: RMAT graph, {} vertices, {} edges (power-law)",
        el.num_vertices(),
        el.num_edges()
    );
    let input = Input::graph(el);
    let machine = MachineConfig::hpca22();

    for kernel in [
        KernelId::DegreeCount,
        KernelId::NeighborPopulate,
        KernelId::Pagerank,
    ] {
        println!("\n--- {} ---", kernel.name());
        println!(
            "commutative updates: {}",
            if kernel.is_commutative() {
                "yes"
            } else {
                "NO (PB still applies!)"
            }
        );
        let baseline = run(kernel, &input, &ModeSpec::Baseline, &machine);
        let pb = run(kernel, &input, &ModeSpec::PbSw { min_bins: 256 }, &machine);
        let cobra = run(kernel, &input, &ModeSpec::cobra_default(), &machine);
        assert_eq!(
            baseline.digest, pb.digest,
            "PB must preserve the kernel's output"
        );
        assert_eq!(
            baseline.digest, cobra.digest,
            "COBRA must preserve the kernel's output"
        );

        let report = |name: &str, o: &cobra_repro::kernels::RunOutcome| {
            let mem = &o.metrics.result.mem;
            println!(
                "{name:>9}: {:>12} cycles | L1 miss {:>5.1}% | LLC miss {:>5.1}% | {:>6.1} MB DRAM",
                o.metrics.cycles(),
                100.0 * mem.l1d.miss_rate(),
                100.0 * mem.llc.miss_rate(),
                mem.dram_bytes() as f64 / 1e6,
            );
        };
        report("baseline", &baseline);
        report("PB-SW", &pb);
        report("COBRA", &cobra);
        println!(
            "  speedups: PB {:.2}x, COBRA {:.2}x over baseline (COBRA/PB {:.2}x)",
            baseline.metrics.cycles() as f64 / pb.metrics.cycles() as f64,
            baseline.metrics.cycles() as f64 / cobra.metrics.cycles() as f64,
            pb.metrics.cycles() as f64 / cobra.metrics.cycles() as f64,
        );
    }
    println!("\nall three kernels produced identical outputs under all three executions ✓");
}
