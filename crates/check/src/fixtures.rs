//! Event-trace fixtures: instrumented runs of the real PB machinery.
//!
//! Two kinds live here:
//!
//! * **Clean captures** — per-kernel update streams driven through the
//!   instrumented [`cobra_pb::bin_parallel`] + `accumulate_into` path and
//!   through the `cobra-core` software-PB exec path. The race detector
//!   must find *nothing* in these: bin ownership makes the parallel
//!   accumulate race-free by construction, and that is exactly the
//!   property being re-proved from the event log.
//! * **A seeded racy capture** — a miswritten Degree-Count variant whose
//!   bins were corrupted so one tuple sits in the wrong bin. Two
//!   accumulate workers then write the same key concurrently. The
//!   detector must flag it (self-test / CI canary).

use cobra_graph::gen;
use cobra_graph::SplitMix64;
use cobra_kernels::KernelId;
use cobra_pb::parallel::{bin_parallel, ThreadBins};
use cobra_pb::trace::{self, Event};
use cobra_pb::{Bins, Tuple};

/// Key-domain size used by the synthetic per-kernel streams.
const NUM_KEYS: u32 = 1 << 12;
/// Updates per synthetic stream.
const NUM_UPDATES: usize = 20_000;
/// Binning producer threads.
const BIN_THREADS: usize = 4;
/// Accumulate worker threads.
const ACC_THREADS: usize = 3;

/// A captured clean run for one kernel's parallel path.
pub struct KernelCapture {
    /// The kernel whose update stream was replayed.
    pub kernel: KernelId,
    /// The event log of binning + parallel accumulate.
    pub events: Vec<Event>,
}

/// Synthesizes the update stream `(key, value)` a kernel's scatter phase
/// would emit, using each kernel's natural key distribution.
fn update_stream(kernel: KernelId, n: usize) -> Vec<(u32, u64)> {
    let mut rng = SplitMix64::seed_from_u64(0xC0B2 + kernel as u64);
    match kernel {
        // Graph kernels scatter along edge destinations: skewed keys.
        KernelId::DegreeCount | KernelId::NeighborPopulate | KernelId::Pagerank => {
            let el = gen::rmat(12, n.div_ceil(1 << 12), 7 + kernel as u64);
            el.edges()
                .iter()
                .take(n)
                .map(|e| (e.dst % NUM_KEYS, e.src as u64))
                .collect()
        }
        // Radii propagates bit-vectors along edges of a uniform graph.
        KernelId::Radii => {
            let el = gen::uniform_random(NUM_KEYS, n, 11);
            el.edges()
                .iter()
                .map(|e| (e.dst % NUM_KEYS, 1u64 << (e.src % 64)))
                .collect()
        }
        // Sorting / permutation kernels scatter near-uniform keys.
        KernelId::IntSort | KernelId::Pinv | KernelId::SymPerm => (0..n)
            .map(|i| (rng.u32_below(NUM_KEYS), i as u64))
            .collect(),
        // Sparse-matrix kernels scatter along row indices of a banded
        // matrix: clustered keys. SpGEMM's partial products scatter by
        // output row — the same clustered shape.
        KernelId::Spmv | KernelId::Transpose | KernelId::SpGemm => (0..n)
            .map(|_| {
                let row = rng.u32_below(NUM_KEYS);
                (row, rng.next_u64() >> 32)
            })
            .collect(),
    }
}

/// The scatter update a kernel applies per tuple (on a `u64` cell — the
/// shapes that matter for racing are add/or/overwrite/append-count).
fn scatter_op(kernel: KernelId) -> fn(&mut u64, u64) {
    match kernel {
        KernelId::DegreeCount | KernelId::IntSort => |c, _| *c += 1,
        KernelId::Pagerank | KernelId::Spmv | KernelId::SpGemm => |c, v| *c = c.wrapping_add(v),
        KernelId::Radii => |c, v| *c |= v,
        KernelId::Pinv => |c, v| *c = v,
        KernelId::NeighborPopulate | KernelId::Transpose | KernelId::SymPerm => {
            |c, v| *c = c.wrapping_add(v ^ 1)
        }
    }
}

/// Runs one kernel's synthetic stream through instrumented parallel
/// binning and accumulate, returning the captured event log.
pub fn kernel_parallel_capture(kernel: KernelId) -> KernelCapture {
    let updates = update_stream(kernel, NUM_UPDATES);
    let op = scatter_op(kernel);
    let ((), events) = trace::capture(|| {
        let tb: ThreadBins<u64> =
            bin_parallel(updates.len(), NUM_KEYS, 64, BIN_THREADS, |i| updates[i]);
        let mut data = vec![0u64; NUM_KEYS as usize];
        tb.accumulate_into(&mut data, ACC_THREADS, |chunk, base, key, v| {
            op(&mut chunk[(key - base) as usize], *v);
        });
    });
    KernelCapture { kernel, events }
}

/// Captures the `cobra-core` software-PB exec path (serial, but the
/// routing invariant on every `BinWrite` is still checked).
pub fn core_exec_capture() -> Vec<Event> {
    use cobra_core::{PbBackend, SwPb};
    use cobra_sim::NullEngine;
    let updates = update_stream(KernelId::DegreeCount, 4_000);
    let ((), events) = trace::capture(|| {
        let mut b: SwPb<NullEngine, u32> =
            SwPb::new(NullEngine::default(), NUM_KEYS, 64, 8, updates.len() as u64);
        for &(k, v) in &updates {
            b.insert(k, v as u32);
        }
        let _ = b.flush_and_take();
    });
    events
}

/// Builds the corrupted Degree-Count bins: every key 0..`num_keys` once,
/// in its owning bin, plus one stray duplicate of `stray_key` misfiled
/// into `stray_bin`.
///
/// With round-robin bin distribution over `ACC_THREADS_RACY` accumulate
/// workers, the stray bin must land on a *different* worker than the
/// owner bin, or the double-write stays on one thread and is not a race.
fn corrupt_bins(num_keys: u32, shift: u32, stray_key: u32, stray_bin: usize) -> Bins<u32> {
    let num_bins = (num_keys as usize).div_ceil(1 << shift);
    let mut raw: Vec<Vec<Tuple<u32>>> = vec![Vec::new(); num_bins];
    for key in 0..num_keys {
        raw[(key >> shift) as usize].push(Tuple { key, value: 1 });
    }
    raw[stray_bin].push(Tuple {
        key: stray_key,
        value: 1,
    });
    Bins::from_raw(shift, num_keys, raw)
}

/// Accumulate workers used by the racy fixture (2 ⇒ worker 0 owns bins
/// 0, 2 and worker 1 owns bins 1, 3).
const ACC_THREADS_RACY: usize = 2;

/// The seeded racy fixture: a miswritten Degree-Count whose binning
/// misfiled one copy of key 10 (owner: bin 0 / worker 0) into bin 1
/// (worker 1). Both workers increment `degree[10]` with no ordering
/// between them — a genuine write-write race the detector must flag,
/// along with the ownership violation at the stray `AccWrite`.
pub fn racy_degree_count_events() -> Vec<Event> {
    let num_keys: u32 = 256;
    let shift: u32 = 6; // 4 bins of 64 keys
    let bins = corrupt_bins(num_keys, shift, 10, 1);
    let tb = ThreadBins::from_bins(vec![bins], num_keys);
    let ((), events) = trace::capture(|| {
        let mut degree = vec![0u32; num_keys as usize];
        tb.accumulate_into(&mut degree, ACC_THREADS_RACY, |chunk, base, key, v| {
            // The miswritten kernel "handles" the stray tuple by writing
            // through a wrapped index — bounds-checked here so the fixture
            // races without also panicking the worker.
            let idx = key.wrapping_sub(base) as usize;
            if let Some(cell) = chunk.get_mut(idx) {
                *cell += *v;
            } else {
                // Out-of-chunk stray: the bug would scribble at `degree
                // [key]` through a raw pointer in real code; the trace
                // already recorded the conflicting AccWrite.
            }
        });
    });
    events
}

/// A *correct* Degree-Count over the same geometry (no stray tuple) — the
/// control for the self-test: zero findings expected.
pub fn clean_degree_count_events() -> Vec<Event> {
    let num_keys: u32 = 256;
    let shift: u32 = 6;
    let mut raw: Vec<Vec<Tuple<u32>>> = vec![Vec::new(); 4];
    for key in 0..num_keys {
        raw[(key >> shift) as usize].push(Tuple { key, value: 1 });
    }
    let tb = ThreadBins::from_bins(vec![Bins::from_raw(shift, num_keys, raw)], num_keys);
    let ((), events) = trace::capture(|| {
        let mut degree = vec![0u32; num_keys as usize];
        tb.accumulate_into(&mut degree, ACC_THREADS_RACY, |chunk, base, key, v| {
            chunk[(key - base) as usize] += *v;
        });
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::check_trace;

    #[test]
    fn clean_fixture_is_clean() {
        let report = check_trace(&clean_degree_count_events());
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.acc_writes > 0);
    }

    #[test]
    fn racy_fixture_is_flagged() {
        let report = check_trace(&racy_degree_count_events());
        assert!(!report.is_clean(), "seeded race went undetected");
        let has_race = report
            .findings
            .iter()
            .any(|f| matches!(f, crate::race::Finding::WriteRace { key: 10, .. }));
        let has_ownership = report
            .findings
            .iter()
            .any(|f| matches!(f, crate::race::Finding::OwnershipViolation { key: 10, .. }));
        assert!(
            has_race,
            "expected a write-write race on key 10: {:?}",
            report.findings
        );
        assert!(
            has_ownership,
            "expected an ownership violation: {:?}",
            report.findings
        );
    }

    #[test]
    fn every_kernel_stream_is_nonempty() {
        for &k in cobra_kernels::ALL_KERNELS.iter() {
            assert!(!update_stream(k, 1000).is_empty(), "{k:?}");
        }
    }
}
