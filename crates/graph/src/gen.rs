//! Deterministic synthetic graph generators.
//!
//! These stand in for the paper's Table III inputs (see DESIGN.md §2): the
//! evaluation depends on the *degree-distribution class* of each input —
//! power-law (DBP/TWIT/KRON/UK2005), uniform (URND), bounded-degree
//! high-diameter road networks (EURO), and extreme skew — not on the exact
//! datasets, which are multi-gigabyte downloads. Every generator is
//! deterministic in its seed.

use crate::edgelist::{Edge, EdgeList};
use crate::rng::SplitMix64;

/// Uniform-random (Erdős–Rényi-style) directed multigraph with `num_edges`
/// edges over `num_vertices` vertices. Stands in for URND.
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
pub fn uniform_random(num_vertices: u32, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| Edge::new(rng.u32_below(num_vertices), rng.u32_below(num_vertices)))
        .collect();
    EdgeList::new(num_vertices, edges)
}

/// R-MAT power-law generator (Graph500 parameters by default). Stands in for
/// the paper's social/web graphs (DBP, TWIT, UK2005).
///
/// `scale` gives `2^scale` vertices; `edge_factor` edges per vertex.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    rmat_with(scale, edge_factor, seed, 0.57, 0.19, 0.19)
}

/// R-MAT with explicit quadrant probabilities `(a, b, c)`; `d = 1-a-b-c`.
///
/// # Panics
///
/// Panics if the probabilities are not a valid sub-distribution or
/// `scale == 0` or `scale > 30`.
pub fn rmat_with(scale: u32, edge_factor: usize, seed: u64, a: f64, b: f64, c: f64) -> EdgeList {
    assert!(scale > 0 && scale <= 30, "scale out of range");
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0,
        "bad rmat parameters"
    );
    let n = 1u32 << scale;
    let num_edges = n as usize * edge_factor;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut src, mut dst) = (0u32, 0u32);
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r = rng.f64();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.push(Edge::new(src, dst));
    }
    EdgeList::new(n, edges)
}

/// Kronecker generator (Graph500 KRON): an R-MAT with symmetric-noise
/// parameters, matching GAP's `kron` input class.
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    rmat_with(scale, edge_factor, seed, 0.57, 0.19, 0.19)
}

/// Bounded-degree, high-diameter road-network-like mesh (stands in for
/// EURO/ROAD): a `side x side` 2-D grid with 4-neighbor connectivity plus a
/// sparse sprinkling of shortcut edges (~1% of vertices).
///
/// The vertex count is `side * side`.
pub fn road_mesh(side: u32, seed: u64) -> EdgeList {
    assert!(side >= 2, "mesh needs side >= 2");
    let n = side * side;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let id = |x: u32, y: u32| y * side + x;
    let mut edges = Vec::with_capacity(4 * n as usize);
    for y in 0..side {
        for x in 0..side {
            let v = id(x, y);
            if x + 1 < side {
                edges.push(Edge::new(v, id(x + 1, y)));
                edges.push(Edge::new(id(x + 1, y), v));
            }
            if y + 1 < side {
                edges.push(Edge::new(v, id(x, y + 1)));
                edges.push(Edge::new(id(x, y + 1), v));
            }
        }
    }
    for _ in 0..(n / 100).max(1) {
        let u = rng.u32_below(n);
        let v = rng.u32_below(n);
        edges.push(Edge::new(u, v));
        edges.push(Edge::new(v, u));
    }
    EdgeList::new(n, edges)
}

/// Highly skewed generator: destinations follow a Zipf(`alpha`) distribution
/// over the vertex IDs, sources are uniform. Stands in for the most skewed
/// inputs (HBUBL-class), where update coalescing pays off most (Figure 14).
pub fn zipf(num_vertices: u32, num_edges: usize, alpha: f64, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Inverse-CDF table over vertex ranks.
    let mut cdf = Vec::with_capacity(num_vertices as usize);
    let mut acc = 0.0f64;
    for v in 0..num_vertices {
        acc += 1.0 / ((v as f64 + 1.0).powf(alpha));
        cdf.push(acc);
    }
    let total = acc;
    let edges = (0..num_edges)
        .map(|_| {
            let r = rng.f64() * total;
            let dst = cdf.partition_point(|&c| c < r) as u32;
            Edge::new(rng.u32_below(num_vertices), dst.min(num_vertices - 1))
        })
        .collect();
    EdgeList::new(num_vertices, edges)
}

/// Uniformly random permutation of `0..n` (used by the PINV kernel and by
/// SymPerm's row/column permutations).
pub fn random_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut p: Vec<u32> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.usize_through(i);
        p.swap(i, j);
    }
    p
}

/// Uniformly random keys in `0..max_key` (the Integer Sort input: the paper
/// sorts 256 M random keys with varying maximum key values).
pub fn random_keys(n: usize, max_key: u32, seed: u64) -> Vec<u32> {
    assert!(max_key > 0, "max_key must be positive");
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n).map(|_| rng.u32_below(max_key)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_random(100, 500, 7), uniform_random(100, 500, 7));
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_eq!(zipf(100, 500, 1.1, 7), zipf(100, 500, 1.1, 7));
        assert_eq!(random_permutation(64, 3), random_permutation(64, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_random(100, 500, 1), uniform_random(100, 500, 2));
    }

    #[test]
    fn rmat_is_skewed_uniform_is_not() {
        let skewed = rmat(10, 8, 42);
        let flat = uniform_random(1024, 8192, 42);
        let max_deg = |el: &EdgeList| el.degrees().into_iter().max().unwrap_or(0);
        assert!(
            max_deg(&skewed) > 3 * max_deg(&flat),
            "rmat max {} vs uniform max {}",
            max_deg(&skewed),
            max_deg(&flat)
        );
    }

    #[test]
    fn zipf_concentrates_on_low_ids() {
        let el = zipf(1000, 10_000, 1.2, 9);
        let in_deg = el.reversed().degrees();
        let head: u32 = in_deg[..10].iter().sum();
        assert!(head as f64 > 0.2 * el.num_edges() as f64, "head got {head}");
    }

    #[test]
    fn road_mesh_has_bounded_degree() {
        let el = road_mesh(30, 5);
        assert_eq!(el.num_vertices(), 900);
        let max = el.degrees().into_iter().max().unwrap();
        assert!(max <= 8, "max degree {max}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(1000, 11);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn random_keys_in_range() {
        let keys = random_keys(10_000, 1 << 16, 13);
        assert!(keys.iter().all(|&k| k < (1 << 16)));
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn rmat_vertex_domain() {
        let el = rmat(6, 4, 1);
        assert_eq!(el.num_vertices(), 64);
        assert_eq!(el.num_edges(), 256);
    }
}
