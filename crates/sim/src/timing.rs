//! Simplified limited-window out-of-order timing model.
//!
//! The model captures the first-order effects the paper's results depend on:
//!
//! * **issue bandwidth** — instructions dispatch at `issue_width` per cycle,
//!   so software PB's extra binning instructions cost front-end bandwidth;
//! * **ROB-bounded memory-level parallelism** — an instruction cannot
//!   dispatch until the instruction `rob` slots older has retired (in
//!   order), so independent misses overlap only within the reorder window;
//! * **load-queue capacity** — at most `load_queue` loads in flight;
//! * **branch mispredictions** — a mispredicted branch flushes the front end
//!   for `mispredict_penalty` cycles after it resolves.
//!
//! This is the same family of approximation as Sniper's interval model,
//! which the paper uses; see DESIGN.md §2 for the substitution note.

use crate::config::MachineConfig;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Sub-cycle clock resolution: 4 dispatch slots per cycle.
const SUB: u64 = 4;

/// The out-of-order core timing model.
#[derive(Debug, Clone)]
pub struct OooCore {
    issue_step: u64,
    rob_cap: usize,
    lq_cap: usize,
    mshr_cap: usize,
    mispredict_penalty: u64,
    /// Dispatch clock in sub-cycle units.
    now: u64,
    /// In-order retire times (sub-cycles) of in-flight instructions.
    rob: VecDeque<u64>,
    /// Completion times of in-flight loads (entries are freed as data
    /// returns, earliest first).
    lq: BinaryHeap<Reverse<u64>>,
    /// Completion times of in-flight DRAM misses (MSHR occupancy).
    mshrs: BinaryHeap<Reverse<u64>>,
    last_retire: u64,
    instructions: u64,
    stall_subcycles: u64,
}

impl OooCore {
    /// Creates a core from the machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        assert!(cfg.issue_width >= 1 && cfg.issue_width as u64 <= SUB);
        OooCore {
            issue_step: SUB / cfg.issue_width as u64,
            rob_cap: cfg.rob as usize,
            lq_cap: cfg.load_queue as usize,
            mshr_cap: cfg.mshrs as usize,
            mispredict_penalty: cfg.mispredict_penalty,
            now: 0,
            rob: VecDeque::with_capacity(cfg.rob as usize),
            lq: BinaryHeap::with_capacity(cfg.load_queue as usize),
            mshrs: BinaryHeap::with_capacity(cfg.mshrs as usize),
            last_retire: 0,
            instructions: 0,
            stall_subcycles: 0,
        }
    }

    /// Dispatches one instruction with `latency` cycles to complete.
    /// Returns its completion time in sub-cycles.
    fn dispatch(&mut self, latency: u64) -> u64 {
        // Structural ROB stall: wait for the oldest instruction to retire.
        if self.rob.len() == self.rob_cap {
            let oldest = self.rob.pop_front().expect("rob nonempty");
            self.now = self.now.max(oldest);
        }
        self.now += self.issue_step;
        let complete = self.now + latency * SUB;
        self.last_retire = self.last_retire.max(complete);
        self.rob.push_back(self.last_retire);
        self.instructions += 1;
        complete
    }

    /// A single-cycle ALU instruction.
    pub fn alu(&mut self) {
        self.dispatch(1);
    }

    /// A load whose data arrives after `latency` cycles (from the cache
    /// model). Blocks dispatch if the load queue is full.
    pub fn load(&mut self, latency: u64) {
        self.load_kind(latency, false)
    }

    /// A load that misses all the way to DRAM: additionally occupies a
    /// miss-status-holding register, bounding irregular-access MLP.
    pub fn load_dram(&mut self, latency: u64) {
        self.load_kind(latency, true)
    }

    fn load_kind(&mut self, latency: u64, is_dram_miss: bool) {
        // Free every entry whose data has already returned.
        while let Some(&Reverse(t)) = self.lq.peek() {
            if t <= self.now {
                self.lq.pop();
            } else {
                break;
            }
        }
        if self.lq.len() == self.lq_cap {
            let Reverse(earliest) = self.lq.pop().expect("lq nonempty");
            self.now = self.now.max(earliest);
        }
        if is_dram_miss {
            while let Some(&Reverse(t)) = self.mshrs.peek() {
                if t <= self.now {
                    self.mshrs.pop();
                } else {
                    break;
                }
            }
            if self.mshrs.len() == self.mshr_cap {
                let Reverse(earliest) = self.mshrs.pop().expect("mshrs nonempty");
                self.now = self.now.max(earliest);
            }
        }
        let complete = self.dispatch(latency);
        self.lq.push(Reverse(complete));
        if is_dram_miss {
            self.mshrs.push(Reverse(complete));
        }
    }

    /// A store: retires into the store buffer in one cycle (the 512-entry
    /// store queue of Table II never backs up at this model's granularity).
    pub fn store(&mut self) {
        self.dispatch(1);
    }

    /// A conditional branch. A misprediction stalls dispatch until the
    /// branch resolves plus the refill penalty.
    pub fn branch(&mut self, mispredicted: bool) {
        let complete = self.dispatch(1);
        if mispredicted {
            self.now = self.now.max(complete) + self.mispredict_penalty * SUB;
        }
    }

    /// An explicit dispatch stall of `cycles` (COBRA eviction-buffer
    /// back-pressure). Tracked separately in [`stall_cycles`](Self::stall_cycles).
    pub fn stall(&mut self, cycles: u64) {
        self.now += cycles * SUB;
        self.stall_subcycles += cycles * SUB;
    }

    /// Retires everything in flight and returns the final cycle count.
    pub fn drain(&mut self) -> u64 {
        self.now = self.now.max(self.last_retire);
        self.rob.clear();
        self.lq.clear();
        self.mshrs.clear();
        self.cycles()
    }

    /// Cycles elapsed so far (dispatch clock; call [`drain`](Self::drain)
    /// first for a final count that includes in-flight completions).
    pub fn cycles(&self) -> u64 {
        self.now / SUB
    }

    /// Instructions dispatched.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles spent in explicit [`stall`](Self::stall)s.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_subcycles / SUB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> OooCore {
        OooCore::new(&MachineConfig::hpca22())
    }

    #[test]
    fn alu_throughput_is_issue_width() {
        let mut c = core();
        for _ in 0..4000 {
            c.alu();
        }
        let cycles = c.drain();
        // 4-wide: ~1000 cycles (+1 for the last completion).
        assert!((1000..=1010).contains(&cycles), "cycles {cycles}");
    }

    #[test]
    fn independent_misses_overlap_within_rob() {
        let cfg = MachineConfig::hpca22();
        let mut c = OooCore::new(&cfg);
        // 128 loads of DRAM latency: with a 128-entry ROB and 48-entry LQ
        // they must overlap substantially rather than serialize.
        for _ in 0..128 {
            c.load(cfg.dram_latency);
        }
        let cycles = c.drain();
        let serial = 128 * cfg.dram_latency;
        assert!(cycles < serial / 10, "cycles {cycles} vs serial {serial}");
    }

    #[test]
    fn rob_limits_runahead_past_a_miss() {
        let cfg = MachineConfig::hpca22();
        let mut c = OooCore::new(&cfg);
        // One long miss followed by far more ALU work than the ROB holds:
        // dispatch must stall when the window fills behind the miss.
        c.load(cfg.dram_latency);
        for _ in 0..10_000 {
            c.alu();
        }
        let cycles = c.drain();
        // 10_000 ALUs at 4-wide = 2500 cycles; the miss adds its latency
        // minus the window it can hide under (127 slots / 4-wide ≈ 32 cyc).
        let min_expected = 2500 + cfg.dram_latency - 128 / 4 - 2;
        assert!(cycles >= min_expected, "cycles {cycles} < {min_expected}");
    }

    #[test]
    fn load_queue_bounds_mlp() {
        let mut cfg = MachineConfig::hpca22();
        cfg.rob = 1024; // make LQ the binding constraint
        cfg.load_queue = 4;
        let mut c = OooCore::new(&cfg);
        for _ in 0..64 {
            c.load(cfg.dram_latency);
        }
        let cycles = c.drain();
        // 64 loads / 4 in flight => at least 16 serialized DRAM epochs.
        assert!(cycles >= 15 * cfg.dram_latency, "cycles {cycles}");
    }

    #[test]
    fn mispredict_costs_resolution_plus_penalty() {
        let cfg = MachineConfig::hpca22();
        let mut good = OooCore::new(&cfg);
        let mut bad = OooCore::new(&cfg);
        for _ in 0..100 {
            good.branch(false);
            bad.branch(true);
        }
        let g = good.drain();
        let b = bad.drain();
        assert!(b >= g + 100 * cfg.mispredict_penalty, "g={g} b={b}");
    }

    #[test]
    fn stall_accounted_separately() {
        let mut c = core();
        c.alu();
        c.stall(50);
        c.alu();
        let cycles = c.drain();
        assert!(cycles >= 50);
        assert_eq!(c.stall_cycles(), 50);
    }

    #[test]
    fn instruction_count_tracks_dispatches() {
        let mut c = core();
        c.alu();
        c.load(3);
        c.store();
        c.branch(false);
        assert_eq!(c.instructions(), 4);
    }
}
