//! Native (real-hardware) benchmarks of the software Propagation Blocking
//! library: the locality optimization the paper builds on, measured as real
//! wall-clock on the host machine — direct irregular updates vs
//! binning + accumulate, and PB counting sort vs the standard sort.

use cobra_graph::gen;
use cobra_pb::Binner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const NUM_KEYS: u32 = 1 << 22; // 4M-entry histogram: 16MB, beyond LLC
const NUM_UPDATES: usize = 1 << 22;

fn updates() -> Vec<u32> {
    gen::random_keys(NUM_UPDATES, NUM_KEYS, 42)
}

fn bench_histogram(c: &mut Criterion) {
    let keys = updates();
    let mut g = c.benchmark_group("histogram_4M_keys");
    g.sample_size(10);
    g.throughput(Throughput::Elements(keys.len() as u64));

    g.bench_function("direct_scatter", |b| {
        b.iter(|| {
            let mut counts = vec![0u32; NUM_KEYS as usize];
            for &k in &keys {
                counts[k as usize] += 1;
            }
            black_box(counts)
        })
    });

    for bins in [256usize, 4096, 65536] {
        g.bench_with_input(BenchmarkId::new("pb_bin_accumulate", bins), &bins, |b, &bins| {
            b.iter(|| {
                let mut binner = Binner::<()>::new(NUM_KEYS, bins);
                for &k in &keys {
                    binner.insert(k, ());
                }
                let mut counts = vec![0u32; NUM_KEYS as usize];
                binner.finish().accumulate(|k, _| counts[k as usize] += 1);
                black_box(counts)
            })
        });
    }
    g.finish();
}

fn bench_counting_sort(c: &mut Criterion) {
    let keys = gen::random_keys(1 << 21, 1 << 22, 7);
    let mut g = c.benchmark_group("integer_sort_2M");
    g.sample_size(10);
    g.throughput(Throughput::Elements(keys.len() as u64));

    g.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            v.sort_unstable();
            black_box(v)
        })
    });

    g.bench_function("pb_counting_sort", |b| {
        b.iter(|| {
            let mut binner = Binner::<()>::new(1 << 22, 4096);
            for &k in &keys {
                binner.insert(k, ());
            }
            let bins = binner.finish();
            let range = 1usize << bins.bin_shift();
            let mut out = Vec::with_capacity(keys.len());
            for bin_id in 0..bins.num_bins() {
                let base = (bin_id * range) as u32;
                let mut local = vec![0u32; range];
                for t in bins.bin(bin_id) {
                    local[(t.key - base) as usize] += 1;
                }
                for (off, &cnt) in local.iter().enumerate() {
                    for _ in 0..cnt {
                        out.push(base + off as u32);
                    }
                }
            }
            black_box(out)
        })
    });
    g.finish();
}

fn bench_parallel_binning(c: &mut Criterion) {
    let keys = updates();
    let mut g = c.benchmark_group("parallel_binning_4M");
    g.sample_size(10);
    g.throughput(Throughput::Elements(keys.len() as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(cobra_pb::bin_parallel(keys.len(), NUM_KEYS, 4096, t, |i| {
                    (keys[i], ())
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_histogram, bench_counting_sort, bench_parallel_binning);
criterion_main!(benches);
