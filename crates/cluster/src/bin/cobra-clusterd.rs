//! `cobra-clusterd` — one cluster role as a standalone process.
//!
//! ```text
//! cobra-clusterd --node [--addr HOST:PORT] [--keys N]
//!                [--shards N] [--data-dir PATH] [--sync never|onseal|bytes:N]
//!                [--checkpoint-every N]
//! cobra-clusterd --follow PRIMARY_ADDR --data-dir PATH [--interval-ms N]
//! ```
//!
//! `--workers N` is accepted and ignored for script compatibility: the
//! backend is now a single-threaded reactor, not a worker pool.
//!
//! `--node` runs one `cobra-serve` backend (a cluster member). It prints
//! `ADDR <host:port>` once bound (plus `RECOVERED …` in durable mode) and
//! drains gracefully on `q`/EOF from stdin — the same contract as
//! `cobra-served`, duplicated here so the cluster e2e tests can spawn
//! members via `CARGO_BIN_EXE_cobra-clusterd`. Promotion of a follower is
//! exactly this mode pointed at the follower's directory: recovery does
//! the rest.
//!
//! `--follow` runs the replication daemon: one [`ReplicaSync`] round
//! every `--interval-ms` (default 20), printing
//! `SYNC epoch=E files=F bytes=B lag=L` after each round that shipped
//! bytes or advanced the epoch. When the primary dies it prints
//! `PRIMARY-LOST epoch=E` and exits cleanly — the operator (or test)
//! then promotes the directory with `--node`.

#![forbid(unsafe_code)]

use cobra_cluster::ReplicaSync;
use cobra_serve::{ServeConfig, Server};
use cobra_stream::{DurableConfig, StreamConfig, SyncPolicy};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

struct NodeOptions {
    addr: String,
    keys: u32,
    shards: usize,
    data_dir: Option<String>,
    sync: SyncPolicy,
    checkpoint_every: u64,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            addr: "127.0.0.1:0".to_string(),
            keys: 1 << 20,
            shards: 4,
            data_dir: None,
            sync: SyncPolicy::OnSeal,
            checkpoint_every: 8,
        }
    }
}

struct FollowOptions {
    primary: String,
    data_dir: String,
    interval: Duration,
}

enum Mode {
    Node(NodeOptions),
    Follow(FollowOptions),
}

fn parse_sync(s: &str) -> Result<SyncPolicy, String> {
    if s == "never" {
        return Ok(SyncPolicy::Never);
    }
    if s == "onseal" {
        return Ok(SyncPolicy::OnSeal);
    }
    if let Some(n) = s.strip_prefix("bytes:") {
        let bytes: u64 = n
            .parse()
            .map_err(|_| format!("--sync bytes:N needs a number, got {n:?}"))?;
        return Ok(SyncPolicy::EveryNBytes(bytes));
    }
    Err(format!(
        "--sync must be never, onseal, or bytes:N (got {s:?})"
    ))
}

const USAGE: &str = "usage: cobra-clusterd --node [--addr HOST:PORT] [--keys N] \
     [--shards N] [--data-dir PATH] [--sync never|onseal|bytes:N] \
     [--checkpoint-every N]\n   or: cobra-clusterd --follow PRIMARY_ADDR \
     --data-dir PATH [--interval-ms N]";

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut node = NodeOptions::default();
    let mut is_node = false;
    let mut primary: Option<String> = None;
    let mut interval = Duration::from_millis(20);
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i).ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--node" => is_node = true,
            "--follow" => primary = Some(value(&mut i)?.clone()),
            "--addr" => node.addr = value(&mut i)?.clone(),
            "--keys" => {
                node.keys = value(&mut i)?
                    .parse()
                    .map_err(|_| "--keys needs a number".to_string())?
            }
            "--workers" => {
                // Legacy worker-pool knob: still parsed (scripts pass it)
                // but the reactor has no pool to size.
                let _: usize = value(&mut i)?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?;
            }
            "--shards" => {
                node.shards = value(&mut i)?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?
            }
            "--data-dir" => node.data_dir = Some(value(&mut i)?.clone()),
            "--sync" => node.sync = parse_sync(value(&mut i)?)?,
            "--checkpoint-every" => {
                node.checkpoint_every = value(&mut i)?
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a number".to_string())?
            }
            "--interval-ms" => {
                let ms: u64 = value(&mut i)?
                    .parse()
                    .map_err(|_| "--interval-ms needs a number".to_string())?;
                interval = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    match (is_node, primary) {
        (true, None) => Ok(Mode::Node(node)),
        (false, Some(primary)) => {
            let data_dir = node
                .data_dir
                .ok_or_else(|| "--follow needs --data-dir".to_string())?;
            Ok(Mode::Follow(FollowOptions {
                primary,
                data_dir,
                interval,
            }))
        }
        (true, Some(_)) => Err("--node and --follow are mutually exclusive".to_string()),
        (false, None) => Err(USAGE.to_string()),
    }
}

fn run_node(opts: NodeOptions) -> Result<(), String> {
    let stream_cfg = StreamConfig::new().shards(opts.shards);
    let mut serve_cfg = ServeConfig::new().addr(&opts.addr);
    if let Some(dir) = &opts.data_dir {
        serve_cfg = serve_cfg.durable(
            DurableConfig::new(dir)
                .sync(opts.sync)
                .checkpoint_every(opts.checkpoint_every),
        );
    }
    let server = Server::start(opts.keys, stream_cfg, serve_cfg)
        .map_err(|e| format!("failed to start node: {e}"))?;
    let mut out = std::io::stdout();
    if let Some(report) = server.recovery() {
        let _ = writeln!(
            out,
            "RECOVERED epoch={} checkpoint={} records={} tuples={}",
            report.committed_epoch,
            report.checkpoint_epoch,
            report.replayed_records,
            report.replayed_tuples
        );
    }
    // Tests and scripts block on this line to learn the ephemeral port.
    let _ = writeln!(out, "ADDR {}", server.local_addr());
    let _ = out.flush();

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "q" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let (snapshot, stats) = server.shutdown();
    let _ = writeln!(
        out,
        "DRAINED epoch={} tuples={}",
        snapshot.epoch(),
        stats.tuples_ingested
    );
    Ok(())
}

fn run_follow(opts: FollowOptions) -> Result<(), String> {
    let mut sync = ReplicaSync::connect(&opts.primary, &opts.data_dir)
        .map_err(|e| format!("failed to reach primary {}: {e}", opts.primary))?;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "FOLLOWING {}", opts.primary);
    let _ = out.flush();

    // Watch stdin from a helper thread so the sync loop stays simple:
    // any line `q` (or EOF) requests a graceful stop.
    let (quit_tx, quit_rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "q" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        let _ = quit_tx.send(());
    });

    let mut last_reported = u64::MAX;
    loop {
        match sync.sync_round() {
            Ok(round) => {
                if round.bytes > 0 || round.epoch != last_reported {
                    last_reported = round.epoch;
                    let _ = writeln!(
                        out,
                        "SYNC epoch={} files={} bytes={} lag={}",
                        round.epoch,
                        round.files,
                        round.bytes,
                        round.primary_epoch.saturating_sub(round.epoch)
                    );
                    let _ = out.flush();
                }
            }
            Err(cobra_cluster::ReplicaError::Primary(e)) => {
                // The promotion trigger: report how far we got and stop.
                let _ = writeln!(out, "PRIMARY-LOST epoch={} ({e})", sync.last_epoch());
                let _ = out.flush();
                return Ok(());
            }
            Err(e) => return Err(format!("replication failed: {e}")),
        }
        match quit_rx.recv_timeout(opts.interval) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = writeln!(out, "STOPPED epoch={}", sync.last_epoch());
                return Ok(());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match parse_args(&args) {
        Ok(mode) => mode,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        Mode::Node(opts) => run_node(opts),
        Mode::Follow(opts) => run_follow(opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
