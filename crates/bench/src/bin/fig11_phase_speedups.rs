//! Figure 11: COBRA's per-phase speedups over PB-SW — Binning accelerates
//! far more than Accumulate (hardware offload + no compromise bins).

#![forbid(unsafe_code)]

use cobra_bench::{harness, inputs, report, Scale, Table};
use cobra_core::exec::{geomean, phases};
use cobra_kernels::ALL_KERNELS;
use cobra_sim::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let mut t = Table::new(
        "Figure 11: COBRA speedup over PB-SW, per phase",
        &["kernel", "input", "binning", "accumulate", "overall"],
    );
    let (mut s_bin, mut s_acc) = (Vec::new(), Vec::new());
    for &k in &ALL_KERNELS {
        let ni = inputs::representative_input(k, scale);
        let (pb_sw, cobra) = harness::run_pb_cobra(k, &ni.input, &machine);
        let ratio = |phase: &str| {
            let pb = pb_sw.phase_cycles(phase).max(1) as f64;
            let co = cobra.phase_cycles(phase).max(1) as f64;
            pb / co
        };
        let b = ratio(phases::BINNING);
        let a = ratio(phases::ACCUMULATE);
        s_bin.push(b);
        s_acc.push(a);
        t.row(vec![
            k.name().into(),
            ni.name,
            report::f2(b),
            report::f2(a),
            report::f2(cobra.speedup_over(&pb_sw)),
        ]);
        eprintln!("[done] {}", k.name());
    }
    t.row(vec![
        "GEOMEAN".into(),
        "-".into(),
        report::f2(geomean(s_bin.iter().copied())),
        report::f2(geomean(s_acc.iter().copied())),
        "-".into(),
    ]);
    t.print();
    t.write_csv("fig11_phase_speedups");
    println!(
        "\nShape check (paper Fig. 11): Binning speedups (2.2-32x, mean ~8x) far\n\
         exceed Accumulate speedups; both phases improve under COBRA."
    );
}
