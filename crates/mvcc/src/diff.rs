//! Diff-by-identity between two epoch snapshots.
//!
//! Copy-on-write publishing makes "what changed between epoch `a` and
//! epoch `b`" cheap to answer: a segment whose `Arc` handle is shared by
//! both snapshots was never rewritten between them, so only *divergent*
//! segments (pointer-unequal handles, found in O(num_segments) by
//! [`cobra_bins::divergent_segments`]) need a value-level scan. The diff
//! therefore costs O(segments + keys-in-rewritten-segments), independent
//! of the total key count for sparse epochs.
//!
//! Entries carry the **absolute value at the newer epoch**, not an
//! increment. That makes applying a diff idempotent — replaying a delta
//! you already hold, or re-syncing over a window you partially consumed,
//! converges to the same state — which is what makes the subscription
//! layer's `LAGGED{resume_epoch}` + diff re-sync lossless.

use cobra_bins::divergent_segments;
use cobra_stream::EpochSnapshot;
use std::sync::Arc;

/// Changed keys in `lo..hi` between `old` and `new`, as sorted
/// `(key, value_at_new)` pairs.
///
/// Both snapshots must come from the same pipeline geometry (equal
/// `num_keys` and `segment_keys`); `lo..hi` must lie inside the key
/// space. `old` may be the newer snapshot — the comparison is symmetric
/// except that values are always taken from `new`.
///
/// # Panics
///
/// Panics on geometry mismatch or an out-of-range window (server-side
/// callers validate ranges before calling; this is the internal
/// contract, not a wire-facing surface).
pub fn diff_range<A: Clone + PartialEq>(
    old: &EpochSnapshot<A>,
    new: &EpochSnapshot<A>,
    lo: u32,
    hi: u32,
) -> Vec<(u32, A)> {
    assert_eq!(old.num_keys(), new.num_keys(), "snapshot geometry drifted");
    assert_eq!(
        old.segment_keys(),
        new.segment_keys(),
        "snapshot geometry drifted"
    );
    assert!(lo <= hi && hi <= new.num_keys(), "diff range out of bounds");
    if lo == hi {
        return Vec::new();
    }

    let seg_keys = new.segment_keys();
    let seg_lo = (lo / seg_keys) as usize;
    let seg_hi = ((hi - 1) / seg_keys) as usize;
    let old_handles: Vec<Arc<Vec<A>>> = (seg_lo..=seg_hi)
        .map(|i| Arc::clone(old.segment(i)))
        .collect();
    let new_handles: Vec<Arc<Vec<A>>> = (seg_lo..=seg_hi)
        .map(|i| Arc::clone(new.segment(i)))
        .collect();

    let mut out = Vec::new();
    for rel in divergent_segments(&old_handles, &new_handles) {
        let seg = seg_lo + rel;
        let base = seg as u32 * seg_keys;
        let old_seg = &old_handles[rel];
        let new_seg = &new_handles[rel];
        let from = lo.max(base) - base;
        let to = hi.min(base + new_seg.len() as u32) - base;
        for k in from..to {
            let (o, n) = (&old_seg[k as usize], &new_seg[k as usize]);
            if o != n {
                out.push((base + k, n.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, segments: Vec<Arc<Vec<u64>>>) -> EpochSnapshot<u64> {
        EpochSnapshot::from_segments(epoch, 4, segments)
    }

    #[test]
    fn shared_segments_are_skipped_and_changes_materialize() {
        let shared = Arc::new(vec![1, 2, 3, 4]);
        let old = snap(1, vec![Arc::clone(&shared), Arc::new(vec![5, 6, 7, 8])]);
        let new = snap(2, vec![Arc::clone(&shared), Arc::new(vec![5, 9, 7, 11])]);
        assert_eq!(diff_range(&old, &new, 0, 8), vec![(5, 9), (7, 11)]);
    }

    #[test]
    fn divergent_but_equal_values_produce_no_entries() {
        // Distinct allocations, identical contents (e.g. a rewrite that
        // restored the same value): identity only gates the scan.
        let old = snap(1, vec![Arc::new(vec![1, 2, 3, 4])]);
        let new = snap(2, vec![Arc::new(vec![1, 2, 3, 4])]);
        assert_eq!(diff_range(&old, &new, 0, 4), vec![]);
    }

    #[test]
    fn range_clips_to_segment_boundaries() {
        let old = snap(1, vec![Arc::new(vec![0; 4]), Arc::new(vec![0; 4])]);
        let new = snap(
            2,
            vec![Arc::new(vec![1, 1, 1, 1]), Arc::new(vec![2, 2, 2, 2])],
        );
        assert_eq!(diff_range(&old, &new, 3, 5), vec![(3, 1), (4, 2)]);
        assert_eq!(diff_range(&old, &new, 4, 4), vec![]);
    }

    #[test]
    fn short_tail_segment_is_handled() {
        let old = snap(1, vec![Arc::new(vec![0; 4]), Arc::new(vec![0; 2])]);
        let new = snap(2, vec![Arc::new(vec![0; 4]), Arc::new(vec![0, 9])]);
        assert_eq!(diff_range(&old, &new, 0, 6), vec![(5, 9)]);
    }

    #[test]
    fn applying_a_diff_is_idempotent() {
        let old = snap(1, vec![Arc::new(vec![10, 20, 30, 40])]);
        let new = snap(2, vec![Arc::new(vec![10, 21, 30, 41])]);
        let delta = diff_range(&old, &new, 0, 4);
        let mut state = old.to_vec();
        for &(k, v) in &delta {
            state[k as usize] = v;
        }
        let once = state.clone();
        for &(k, v) in &delta {
            state[k as usize] = v;
        }
        assert_eq!(state, once);
        assert_eq!(state, new.to_vec());
    }
}
