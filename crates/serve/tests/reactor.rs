//! Reactor-specific end-to-end tests: protocol pipelining with `BUSY`
//! suffix retries, and slow-loris / partial-frame robustness under the
//! per-connection frame budget.

use cobra_serve::protocol::{self, Frame, MAX_FRAME};
use cobra_serve::{ServeClient, ServeConfig, Server};
use cobra_stream::StreamConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A server whose shard FIFO is one single-tuple batch deep, so any
/// sustained UPDATE stream slams into `BUSY` and the client retry path.
fn congested_server(num_keys: u32) -> Server {
    let stream_cfg = StreamConfig::new()
        .shards(1)
        .channel_capacity(1)
        .batch_tuples(1);
    let serve_cfg = ServeConfig::new()
        .cache_blocks(8)
        .cache_block_keys(16)
        .read_timeout(Duration::from_millis(10));
    Server::start(num_keys, stream_cfg, serve_cfg).expect("bind ephemeral server")
}

/// A server with a deliberately short per-connection frame budget.
fn short_budget_server(num_keys: u32, budget: Duration) -> Server {
    let stream_cfg = StreamConfig::new().shards(2).batch_tuples(8);
    let serve_cfg = ServeConfig::new()
        .cache_blocks(8)
        .cache_block_keys(16)
        .read_timeout(Duration::from_millis(10))
        .idle_budget(budget);
    Server::start(num_keys, stream_cfg, serve_cfg).expect("bind ephemeral server")
}

fn read_one_frame(stream: &mut TcpStream) -> Frame {
    match protocol::read_frame(stream, MAX_FRAME) {
        Ok(Some(frame)) => frame,
        other => panic!("expected one frame, got {other:?}"),
    }
}

/// The satellite regression test for pipelined `update_all`: a window of
/// UPDATE frames in flight against a congested server produces `BUSY`
/// refusals, and the suffix retries must not lose (or double-count) a
/// single tuple. The final snapshot sum is the arbiter.
#[test]
fn pipelined_busy_suffix_retries_lose_nothing() {
    let server = congested_server(64);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    const TUPLES: u64 = 4096;
    let batch: Vec<(u32, u64)> = (0..TUPLES).map(|i| ((i % 64) as u32, i + 1)).collect();
    let expected: u64 = batch.iter().map(|&(_, v)| v).sum();

    // Default window (16) keeps many frames in flight; the 1-deep FIFO
    // guarantees refusals on a batch this size.
    let busy_rounds = client.update_all(&batch).expect("pipelined update");
    assert!(
        busy_rounds > 0,
        "a 1-deep shard FIFO must refuse at least once over {TUPLES} tuples"
    );
    client.seal().expect("seal");

    let (snapshot, stats) = server.shutdown();
    let total: u64 = snapshot.iter().sum();
    assert_eq!(
        total, expected,
        "BUSY suffix retry dropped or duplicated tuples"
    );
    assert_eq!(stats.tuples_ingested, TUPLES);
    assert!(stats.busy_tuples > 0, "server never reported a refusal");
}

/// window=1 is the old lockstep protocol: one frame in flight, one ack
/// awaited. It must survive the same congestion with the same sum.
#[test]
fn lockstep_window_one_matches_pipelined_behaviour() {
    let server = congested_server(64);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.set_pipeline_window(1);

    const TUPLES: u64 = 2048;
    let batch: Vec<(u32, u64)> = (0..TUPLES).map(|i| ((i % 64) as u32, 2 * i + 1)).collect();
    let expected: u64 = batch.iter().map(|&(_, v)| v).sum();

    client.update_all(&batch).expect("lockstep update");
    client.seal().expect("seal");

    let (snapshot, stats) = server.shutdown();
    let total: u64 = snapshot.iter().sum();
    assert_eq!(total, expected);
    assert_eq!(stats.tuples_ingested, TUPLES);
}

/// A client dribbling one byte at a time must be decoded exactly like a
/// whole read, as long as each frame completes inside the budget.
#[test]
fn one_byte_dribble_completes_within_the_frame_budget() {
    let server = short_budget_server(16, Duration::from_millis(500));
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");

    let mut bytes = Vec::new();
    protocol::encode(&Frame::Update(vec![(3, 39), (3, 3)]), &mut bytes);
    for chunk in bytes.chunks(1) {
        raw.write_all(chunk).expect("dribble byte");
        raw.flush().expect("flush byte");
        std::thread::sleep(Duration::from_millis(2));
    }
    match read_one_frame(&mut raw) {
        Frame::Accepted { accepted } => assert_eq!(accepted, 2),
        other => panic!("dribbled UPDATE not accepted: {other:?}"),
    }
    drop(raw);
    let (snapshot, _) = server.shutdown();
    assert_eq!(*snapshot.get(3), 42);
}

/// A connection that stalls mid-frame is disconnected once the budget
/// runs out — and a healthy connection on the same reactor keeps making
/// progress the whole time (no head-of-line blocking across sockets).
#[test]
fn mid_frame_stall_is_cut_without_stalling_healthy_connections() {
    let budget = Duration::from_millis(200);
    let server = short_budget_server(16, budget);
    let addr = server.local_addr();

    // The attacker: half a frame, then silence with the socket open.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    let mut bytes = Vec::new();
    protocol::encode(&Frame::Update(vec![(1, 7)]), &mut bytes);
    stalled
        .write_all(&bytes[..bytes.len() / 2])
        .expect("write partial frame");
    stalled.flush().expect("flush partial frame");

    // The victim that must not be starved: full round-trips throughout
    // the attacker's budget window and beyond.
    let mut healthy = ServeClient::connect(addr).expect("connect healthy");
    let t0 = Instant::now();
    let mut rounds = 0u64;
    while t0.elapsed() < 2 * budget {
        healthy.update_all(&[(5, 1)]).expect("healthy update");
        healthy.query(5).expect("healthy query");
        rounds += 1;
    }
    assert!(rounds > 0);

    // The stalled socket must observe the disconnect (EOF or reset).
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    let mut buf = [0u8; 64];
    match stalled.read(&mut buf) {
        Ok(0) => {}  // clean EOF: the reactor dropped us
        Err(_) => {} // reset also counts as disconnected
        Ok(n) => panic!("stalled connection unexpectedly received {n} bytes"),
    }

    let (snapshot, _) = server.shutdown();
    // The attacker's torn half-update must not have landed…
    assert_eq!(*snapshot.get(1), 0);
    // …while every healthy round did.
    assert_eq!(*snapshot.get(5), rounds);
}

/// Idling BETWEEN frames is free: the budget clocks a started frame, not
/// a quiet connection. A client may sit silent far longer than the
/// budget and still be served afterwards.
#[test]
fn idle_between_frames_is_not_budgeted() {
    let budget = Duration::from_millis(150);
    let server = short_budget_server(16, budget);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    client.update_all(&[(2, 20)]).expect("first update");
    std::thread::sleep(4 * budget);
    client
        .update_all(&[(2, 22)])
        .expect("update after long idle");
    client.seal().expect("seal");

    let (snapshot, _) = server.shutdown();
    assert_eq!(*snapshot.get(2), 42);
}
