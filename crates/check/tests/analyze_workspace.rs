//! End-to-end: cobra-analyze over the real workspace must be clean,
//! fast, and produce a sane machine-readable report, and the lint
//! runner must stay clean under its expanded rule set (R9/R10).

use cobra_check::analyze;
use cobra_check::lint;

#[test]
fn workspace_analyzes_clean_with_sane_stats() {
    let root = lint::find_workspace_root().expect("workspace root");
    let report = analyze::run_analysis(&root).expect("analysis runs");
    assert!(
        report.is_clean(),
        "workspace must analyze clean:\n{:#?}",
        report.findings
    );
    // Structural sanity: the analyzer actually saw the workspace.
    assert!(report.stats.files > 50, "files: {}", report.stats.files);
    assert!(report.stats.fns > 500, "fns: {}", report.stats.fns);
    assert!(report.stats.calls > 2000, "calls: {}", report.stats.calls);
    // The workspace has real locks and atomics to reason about.
    assert!(report.stats.locks >= 10, "locks: {}", report.stats.locks);
    assert!(
        report.stats.atomics >= 50,
        "atomics: {}",
        report.stats.atomics
    );
    assert!(
        report.stats.lock_edges >= 3,
        "edges: {}",
        report.stats.lock_edges
    );
    // Both audited allowlist entries are load-bearing (else stale-allow
    // would have fired above, but pin the count too).
    assert_eq!(report.allow_used, 2, "audited allowlist entries in use");
}

#[test]
fn report_json_is_well_formed_and_lists_findings() {
    let root = lint::find_workspace_root().expect("workspace root");
    let report = analyze::run_analysis(&root).expect("analysis runs");
    let json = analyze::report_json(&report);
    assert!(json.contains("\"tool\": \"cobra-analyze\""));
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"findings\": []"));
    // Balanced braces/brackets — cheap well-formedness proxy that does
    // not need a JSON parser (the workspace is dependency-free).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn lints_run_clean_over_the_whole_workspace() {
    let root = lint::find_workspace_root().expect("workspace root");
    let violations = lint::run_lints(&root).expect("lints run");
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn analysis_is_fast_enough_for_ci() {
    let root = lint::find_workspace_root().expect("workspace root");
    let start = std::time::Instant::now();
    let _ = analyze::run_analysis(&root).expect("analysis runs");
    let secs = start.elapsed().as_secs_f64();
    // Acceptance bound is ~10s for the whole pass; a debug-profile run
    // on loaded CI hardware still clears 8s with a wide margin.
    assert!(secs < 8.0, "analysis took {secs:.2}s");
}
