//! Exclusive prefix sums (serial and parallel).
//!
//! Edgelist→CSR conversion turns per-vertex degree counts into the CSR
//! Offsets Array with an exclusive scan (Algorithm 1, line 1).

/// Returns the exclusive prefix sum of `values`, with one extra trailing
/// element holding the total (so the result has `values.len() + 1` entries —
/// exactly the CSR Offsets Array layout).
///
/// ```
/// assert_eq!(cobra_graph::prefix::exclusive_sum(&[2, 0, 3]), vec![0, 2, 2, 5]);
/// ```
pub fn exclusive_sum(values: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(values.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &v in values {
        acc = acc.checked_add(v).expect("prefix sum overflow");
        out.push(acc);
    }
    out
}

/// Parallel exclusive prefix sum over `threads` worker threads
/// (two-pass: per-chunk totals, then per-chunk scan with carried offsets).
///
/// Produces exactly the same output as [`exclusive_sum`].
///
/// # Panics
///
/// Panics if `threads == 0` or the sum overflows `u32`.
pub fn exclusive_sum_parallel(values: &[u32], threads: usize) -> Vec<u32> {
    assert!(threads > 0, "need at least one thread");
    if values.is_empty() {
        return vec![0];
    }
    let chunk = values.len().div_ceil(threads);
    let chunks: Vec<&[u32]> = values.chunks(chunk).collect();

    // Pass 1: per-chunk totals.
    let totals: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| s.spawn(move || c.iter().map(|&v| v as u64).sum::<u64>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let grand: u64 = totals.iter().sum();
    assert!(grand <= u32::MAX as u64, "prefix sum overflow");

    // Chunk base offsets.
    let mut bases = Vec::with_capacity(chunks.len());
    let mut acc = 0u64;
    for t in &totals {
        bases.push(acc as u32);
        acc += t;
    }

    // Pass 2: scan each chunk into its slice of the output.
    let mut out = vec![0u32; values.len() + 1];
    out[values.len()] = grand as u32;
    {
        let body = &mut out[..values.len()];
        std::thread::scope(|s| {
            let mut rest = body;
            for (ci, c) in chunks.iter().enumerate() {
                let (mine, tail) = rest.split_at_mut(c.len());
                rest = tail;
                let base = bases[ci];
                s.spawn(move || {
                    let mut a = base;
                    for (o, &v) in mine.iter_mut().zip(c.iter()) {
                        *o = a;
                        a += v;
                    }
                });
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert_eq!(exclusive_sum(&[]), vec![0]);
        assert_eq!(exclusive_sum_parallel(&[], 4), vec![0]);
    }

    #[test]
    fn known_values() {
        assert_eq!(exclusive_sum(&[1, 2, 3, 4]), vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn parallel_matches_serial() {
        let vals: Vec<u32> = (0..10_000)
            .map(|i| (i * 2654435761u64 % 17) as u32)
            .collect();
        let serial = exclusive_sum(&vals);
        for t in [1, 2, 3, 7, 16] {
            assert_eq!(exclusive_sum_parallel(&vals, t), serial, "threads={t}");
        }
    }

    #[test]
    fn parallel_more_threads_than_elements() {
        let vals = [5u32, 7];
        assert_eq!(exclusive_sum_parallel(&vals, 64), vec![0, 5, 12]);
    }

    #[test]
    #[should_panic]
    fn overflow_detected() {
        exclusive_sum(&[u32::MAX, 1]);
    }
}
