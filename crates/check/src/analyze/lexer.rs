//! A dependency-free lightweight Rust lexer.
//!
//! Produces just enough token structure for the static rules: identifiers
//! (keywords included, distinguished by text), single-character
//! punctuation, literals (string/char/number, contents discarded), and
//! lifetimes. Comments — line, nested block, doc — vanish entirely, so no
//! rule can ever be fooled by `unsafe` or `Ordering::Release` appearing
//! in prose or in an embedded source-text string.
//!
//! The hard parts of lexing Rust without a real grammar are all here:
//! raw strings with arbitrary `#` fences, byte/raw-byte strings, char
//! literals vs. lifetimes (`'a'` vs. `'a`), nested block comments, and
//! float literals vs. ranges (`1.5` vs. `0..n`).

/// Token classes the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `seal_lock`, `Ordering`, …).
    Ident,
    /// A lifetime such as `'a` (the tick is not part of the text).
    Lifetime,
    /// One punctuation character (`{`, `:`, `<`, …).
    Punct,
    /// String, char, or byte literal (text discarded).
    Str,
    /// Numeric literal (text discarded).
    Num,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Token text for idents/lifetimes/punctuation; empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token stream. Total: malformed input (unterminated
/// strings or comments) ends the stream at the problem instead of
/// panicking — the analyzer only ever sees files rustc already accepted.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, newline-counted.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                let start_line = line;
                i = skip_raw_string(b, i, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                let start_line = line;
                i = skip_char(b, i + 1);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`). A tick
                // followed by an identifier run NOT closed by another tick
                // is a lifetime; everything else is a char literal.
                if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j == i + 2 {
                        // 'x' — single ident char closed by a tick: char.
                        toks.push(Tok {
                            kind: Kind::Str,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        toks.push(Tok {
                            kind: Kind::Lifetime,
                            text: String::from_utf8_lossy(&b[i + 1..j]).into_owned(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    toks.push(Tok {
                        kind: Kind::Str,
                        text: String::new(),
                        line,
                    });
                    i = skip_char(b, i);
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Number: digits, underscores, radix/suffix letters; one
                // `.` only when a digit follows (so `0..n` and `1.max(2)`
                // leave the dot alone).
                i += 1;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: String::new(),
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Does `b[i..]` start a raw (possibly byte) string: `r"`, `r#`, `br"`,
/// `br#`?
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    j < b.len() && (b[j] == b'"' || b[j] == b'#')
}

/// Skips a raw string starting at `i` (at the `r`/`b`), returning the
/// index past the closing fence.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while j < b.len() && seen < hashes && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Skips a `"`-delimited string starting at the opening quote, handling
/// escapes; returns the index past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'`-delimited char/byte literal starting at the opening tick.
fn skip_char(b: &[u8], mut i: usize) -> usize {
    i += 1;
    if i < b.len() && b[i] == b'\\' {
        i += 2;
    } else {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_never_leak_tokens() {
        // `sekrit` stands in for danger words like `unsafe` — R9 scans
        // this file too, and a bare danger word on a string-continuation
        // line would look like code to a line-local scanner.
        let src = "\
// sekrit in a line comment\n\
/* sekrit in /* a nested */ block */\n\
let s = \"sekrit Ordering::Release .lock()\";\n\
let r = r#\"raw \"quoted\" sekrit\"#;\n\
let b = b\"bytes sekrit\";\n\
real_ident();\n";
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "sekrit"), "{ids:?}");
        assert!(!ids.iter().any(|t| t == "Ordering"), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a, T: Ord + 'static>(x: &'a T) -> char { 'x' }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "static", "a"]);
        let chars = toks.iter().filter(|t| t.kind == Kind::Str).count();
        assert_eq!(chars, 1, "'x' is the one char literal: {toks:?}");
    }

    #[test]
    fn escaped_char_literals_and_tricky_chars() {
        let toks = lex(r"let nl = '\n'; let tick = '\''; let sp = ' ';");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 3);
        // The semicolons and lets all survive.
        assert_eq!(toks.iter().filter(|t| t.is_ident("let")).count(), 3);
    }

    #[test]
    fn nested_generics_lex_as_puncts() {
        let toks = lex("let x: Vec<Vec<(u32, Option<V>)>> = Vec::new();");
        let open = toks.iter().filter(|t| t.is_punct('<')).count();
        let close: usize = toks
            .iter()
            .map(|t| {
                if t.kind == Kind::Punct {
                    t.text.matches('>').count()
                } else {
                    0
                }
            })
            .sum();
        assert_eq!(open, 3);
        assert_eq!(close, 3);
    }

    #[test]
    fn macros_and_paths_keep_their_idents() {
        let ids = idents("println!(\"{}\", format!(\"x\")); std::mem::take(&mut v);");
        assert!(ids.contains(&"println".to_string()));
        assert!(ids.contains(&"take".to_string()));
        assert!(!ids.contains(&"x".to_string()), "string contents dropped");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let toks = lex("for i in 0..10 { let y = 1.5 + 2.max(3) + 0xFF_u32; }");
        // `0..10` must produce two dots; `1.5` none; `2.max` one.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3, "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn raw_string_with_fences_spans_lines() {
        let src = "a\nlet s = r##\"one \"# two\nthree\"##;\nb";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).expect("a");
        let bt = toks.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(a.line, 1);
        assert_eq!(bt.line, 4, "newline inside the raw string is counted");
    }

    #[test]
    fn line_numbers_track_block_comments_and_strings() {
        let src = "x\n/* c\nc */ y\n\"s\ns\" z";
        let toks = lex(src);
        let find = |n: &str| toks.iter().find(|t| t.is_ident(n)).map(|t| t.line);
        assert_eq!(find("x"), Some(1));
        assert_eq!(find("y"), Some(3));
        assert_eq!(find("z"), Some(5));
    }
}
