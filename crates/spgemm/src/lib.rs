//! # cobra-spgemm — propagation-blocked sparse matrix-matrix multiplication
//!
//! SpGEMM (`C = A · B`) is the irregular-update workload the paper's
//! framework was built for, taken one step further than SpMV: the
//! expansion phase emits one *partial product* `(i, j, a_ik · b_kj)` per
//! pairing of an `A` entry with a matching `B` row, and the scatter target
//! is the two-dimensional key `(i, j)` — a domain far too large for any
//! cache. The crate phrases the multiply as Propagation Blocking
//! (Section III of the paper):
//!
//! 1. **Expand + Bin** — Gustavson-order expansion (output row major)
//!    routes every partial product through a [`cobra_pb::Binner`]
//!    partitioned by output *row range*. Because the update is a
//!    commutative `+=`, the binner's Coup-style frame fusion
//!    ([`Binner::insert_fused`](cobra_pb::Binner::insert_fused)) merges
//!    same-`(row, col)` products that meet inside a C-Buffer frame, so
//!    they cross into bin memory as one tuple.
//! 2. **Accumulate** — each bin covers a narrow output-row range, so a
//!    cache-resident accumulator ([`HashAccum`], or [`DenseAccum`] when
//!    `rows × cols` of the bin fits a configured budget) folds the bin
//!    and emits canonical CSR rows in order.
//!
//! [`stream::spgemm_stream`] runs the same multiply as continuous
//! ingestion over `cobra-stream`: row tiles of `A` become epochs, each
//! epoch's seal publishes a partial-result snapshot, and the
//! [`ColSum`](stream::ColSum) reducer's declared fusability routes shard
//! binning through the same frame-fusion pass.
//!
//! Per-`(i, j)` products always fold in expansion (k-then-duplicate)
//! order, in every path — batch, streaming, hash or dense accumulator —
//! so unfused results are bit-identical across paths; fusion reassociates
//! the per-key sum and is bit-exact on dyadic inputs (see
//! [`dyadic_matrix`]), which is how the `cobra-check` oracle verifies it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod batch;
pub mod stream;

pub use accum::{DenseAccum, HashAccum};
pub use batch::{
    expand, merge_same_col, spgemm, spgemm_with_merge, SpGemmConfig, SpGemmReport, TUPLE_BYTES,
};
pub use stream::{spgemm_stream, ColSum};

use cobra_graph::{SparseMatrix, SplitMix64};

/// A random sparse matrix whose values are dyadic rationals (multiples of
/// 0.25 in `[0.25, 4.0]`): every partial product is a multiple of 2⁻⁴ and
/// every accumulator sum stays exactly representable, so fused, unfused,
/// batch and streaming results can be compared *bitwise*, not by
/// tolerance. Columns are uniform.
pub fn dyadic_matrix(rows: u32, cols: u32, nnz_per_row: u32, seed: u64) -> SparseMatrix {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity((rows * nnz_per_row) as usize);
    for r in 0..rows {
        for _ in 0..nnz_per_row {
            let v = (rng.u32_below(16) + 1) as f64 * 0.25;
            triplets.push((r, rng.u32_below(cols.max(1)), v));
        }
    }
    SparseMatrix::from_coo(rows, cols, &triplets)
}

/// A dyadic matrix with Zipf-distributed (hot) columns, duplicates kept:
/// hot columns recur — often back to back within a row — which is exactly
/// the temporal locality the frame-fusion pass converts into merged
/// tuples. The skewed half of every fusion benchmark and oracle probe.
pub fn dyadic_skewed_matrix(
    rows: u32,
    cols: u32,
    nnz_per_row: u32,
    alpha: f64,
    seed: u64,
) -> SparseMatrix {
    assert!(alpha > 0.0, "alpha must be positive");
    let cols = cols.max(1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Inverse-CDF table over column ranks (same scheme as
    // `cobra_graph::gen::zipf`, reproduced here over column draws).
    let mut cdf = Vec::with_capacity(cols as usize);
    let mut acc = 0.0f64;
    for c in 0..cols {
        acc += 1.0 / (c as f64 + 1.0).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    let mut triplets = Vec::with_capacity((rows * nnz_per_row) as usize);
    for r in 0..rows {
        for _ in 0..nnz_per_row {
            let x = rng.f64_range(0.0, total);
            let c = cdf.partition_point(|&p| p < x) as u32;
            let v = (rng.u32_below(16) + 1) as f64 * 0.25;
            triplets.push((r, c.min(cols - 1), v));
        }
    }
    SparseMatrix::from_coo(rows, cols, &triplets)
}

/// Sorted `(row, col, value-bits)` triplets of a matrix — the canonical
/// form the tests and oracles compare matrices in.
pub fn triplets(m: &SparseMatrix) -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> = (0..m.rows())
        .flat_map(|r| m.row(r).map(move |(c, x)| (r, c, x.to_bits())))
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_values_are_quarters() {
        let m = dyadic_matrix(64, 64, 4, 7);
        assert_eq!(m.nnz(), 256);
        for &v in m.values() {
            assert_eq!(v * 4.0, (v * 4.0).round(), "{v} is not a quarter");
            assert!((0.25..=4.0).contains(&v));
        }
    }

    #[test]
    fn skewed_matrix_has_hot_columns() {
        let m = dyadic_skewed_matrix(512, 512, 8, 1.2, 9);
        let mut counts = vec![0u32; 512];
        for &c in m.col_indices() {
            counts[c as usize] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let avg = (m.nnz() / 512) as u32;
        assert!(max > 5 * avg.max(1), "max {max} avg {avg}");
    }
}
