//! Figure 12: why COBRA's Binning is fast — instruction-count reduction
//! (top) and branch-misprediction elimination (bottom) vs software PB.

#![forbid(unsafe_code)]

use cobra_bench::{harness, inputs, report, Scale, Table};
use cobra_core::exec::geomean;
use cobra_kernels::ALL_KERNELS;
use cobra_sim::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let mut t = Table::new(
        "Figure 12: instruction reduction and branch MPKI (PB-SW vs COBRA)",
        &[
            "kernel",
            "input",
            "PB-SW instr (M)",
            "COBRA instr (M)",
            "reduction",
            "PB-SW MPKI",
            "COBRA MPKI",
            "PB-SW bin-IPC",
            "COBRA bin-IPC",
        ],
    );
    let mut reductions = Vec::new();
    for &k in &ALL_KERNELS {
        let ni = inputs::representative_input(k, scale);
        let (pb_sw, cobra) = harness::run_pb_cobra(k, &ni.input, &machine);
        let pb_i = pb_sw.instructions();
        let co_i = cobra.instructions();
        let red = pb_i as f64 / co_i.max(1) as f64;
        reductions.push(red);
        let bin_ipc = |m: &cobra_core::exec::RunMetrics| {
            m.result.phase("binning").map_or(0.0, |p| p.core.ipc())
        };
        t.row(vec![
            k.name().into(),
            ni.name,
            format!("{:.1}", pb_i as f64 / 1e6),
            format!("{:.1}", co_i as f64 / 1e6),
            report::f2(red),
            report::f2(pb_sw.result.core.branch_mpki()),
            report::f2(cobra.result.core.branch_mpki()),
            report::f2(bin_ipc(&pb_sw)),
            report::f2(bin_ipc(&cobra)),
        ]);
        eprintln!("[done] {}", k.name());
    }
    println!(
        "geomean instruction reduction: {:.2}x",
        geomean(reductions.iter().copied())
    );
    t.print();
    t.write_csv("fig12_instr_branch");
    println!(
        "\nShape check (paper Fig. 12): COBRA executes 2-5.5x fewer instructions,\n\
         eliminates C-Buffer-management branch misses (Pagerank/Radii/SymPerm keep\n\
         their data-dependent branches), and raises Binning IPC (paper: 0.71 -> 1.55)."
    );
}
