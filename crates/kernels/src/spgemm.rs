//! SpGEMM (`C = A · B`, Gustavson order): the expansion emits one partial
//! product per pairing of an `A` entry with a `B` row entry, and the
//! irregular update is a commutative `+=` into the `(row, col)` cell of
//! the output — a scatter domain of `rows × cols` cells, far beyond any
//! cache. The functional product is delegated to `cobra-spgemm` (unfused
//! batch path), which this kernel's arrival-order accumulator matches
//! bitwise; what the kernel adds is the dynamic memory trace of each
//! execution mode.

use crate::common::pc;
use crate::common::MatrixAddrs;
use cobra_core::PbBackend;
use cobra_graph::prefix::exclusive_sum;
use cobra_graph::SparseMatrix;
use cobra_sim::engine::Engine;
use std::collections::BTreeMap;

/// Tuple size: 16 B (output-row key + (`col`, `value`) payload).
pub const TUPLE_BYTES: u32 = 16;

/// Number of partial products the expansion of `a · b` emits.
pub fn expansion_tuples(a: &SparseMatrix, b: &SparseMatrix) -> u64 {
    let ro = b.row_offsets();
    a.col_indices()
        .iter()
        .map(|&k| (ro[k as usize + 1] - ro[k as usize]) as u64)
        .sum()
}

/// Native reference: the unfused `cobra-spgemm` batch path.
pub fn reference(a: &SparseMatrix, b: &SparseMatrix) -> SparseMatrix {
    let cfg = cobra_spgemm::SpGemmConfig {
        fusion: false,
        ..Default::default()
    };
    cobra_spgemm::spgemm(a, b, &cfg).0
}

/// Folds `(row, col) += v` cells in arrival order and emits canonical CSR
/// — the shared functional tail of the baseline and PB variants.
fn emit_csr(rows: u32, cols: u32, cells: BTreeMap<(u32, u32), f64>) -> SparseMatrix {
    let mut row_counts = vec![0u32; rows as usize];
    let mut col_idx = Vec::with_capacity(cells.len());
    let mut values = Vec::with_capacity(cells.len());
    for ((r, c), v) in cells {
        row_counts[r as usize] += 1;
        col_idx.push(c);
        values.push(v);
    }
    let row_offsets = exclusive_sum(&row_counts);
    SparseMatrix::from_raw(rows, cols, row_offsets, col_idx, values)
}

/// Streams the Gustavson expansion of `a · b`, charging the loads of both
/// operands, and hands each partial product to `f`.
fn expand_trace<E: Engine, F>(
    e: &mut E,
    a: &SparseMatrix,
    b: &SparseMatrix,
    a_addrs: MatrixAddrs,
    b_addrs: MatrixAddrs,
    mut f: F,
) where
    F: FnMut(&mut E, u32, u32, f64),
{
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions must agree: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let rows = a.rows();
    for i in 0..rows {
        e.load(a_addrs.row_offsets.addr(4, i as u64), 4);
        e.load(a_addrs.row_offsets.addr(4, i as u64 + 1), 4);
        e.alu(1);
        e.branch(pc::VERTEX_LOOP, i + 1 < rows);
        let lo = a.row_offsets()[i as usize] as u64;
        let cnt = a.row_offsets()[i as usize + 1] as u64 - lo;
        for (ai, (k, av)) in a.row(i).enumerate() {
            e.load(a_addrs.col_idx.addr(4, lo + ai as u64), 4);
            e.load(a_addrs.values.addr(8, lo + ai as u64), 8);
            e.branch(pc::NEIGHBOR_LOOP, (ai as u64) + 1 < cnt);
            // B's row bounds: irregular in k (A's column order).
            e.load(b_addrs.row_offsets.addr(4, k as u64), 4);
            e.load(b_addrs.row_offsets.addr(4, k as u64 + 1), 4);
            let blo = b.row_offsets()[k as usize] as u64;
            let bcnt = b.row_offsets()[k as usize + 1] as u64 - blo;
            for (bi, (j, bv)) in b.row(k).enumerate() {
                e.load(b_addrs.col_idx.addr(4, blo + bi as u64), 4);
                e.load(b_addrs.values.addr(8, blo + bi as u64), 8);
                e.alu(1); // the multiply
                e.branch(pc::NEIGHBOR_LOOP, (bi as u64) + 1 < bcnt);
                f(e, i, j, av * bv);
            }
        }
    }
}

/// Baseline: every partial product performs an irregular read-modify-write
/// of its `(row, col)` output cell — the worst-case scatter the paper's
/// Figure 2 kernels approximate, squared.
pub fn baseline<E: Engine>(e: &mut E, a: &SparseMatrix, b: &SparseMatrix) -> SparseMatrix {
    let a_addrs = MatrixAddrs::alloc(e, a);
    let b_addrs = MatrixAddrs::alloc(e, b);
    let cols = b.cols().max(1) as u64;
    let out_addr = e.alloc("spgemm_cells", a.rows().max(1) as u64 * cols * 8);

    e.phase(cobra_core::exec::phases::MAIN);
    let mut cells = BTreeMap::new();
    expand_trace(e, a, b, a_addrs, b_addrs, |e, i, j, v| {
        let cell = i as u64 * cols + j as u64;
        e.load(out_addr.addr(8, cell), 8);
        e.alu(1); // the add
        e.store(out_addr.addr(8, cell), 8);
        *cells.entry((i, j)).or_insert(0.0) += v;
    });
    emit_csr(a.rows(), b.cols(), cells)
}

/// PB execution: Binning scatters `(i, (j, a_ik·b_kj))` partial products
/// by output row; Accumulate replays each bin — whose rows span one
/// cache-resident range — folding cells in arrival order.
pub fn pb<B: PbBackend<(u32, f64)>>(
    pbb: &mut B,
    a: &SparseMatrix,
    b: &SparseMatrix,
) -> SparseMatrix {
    let a_addrs = MatrixAddrs::alloc(pbb.engine(), a);
    let b_addrs = MatrixAddrs::alloc(pbb.engine(), b);
    let cols = b.cols().max(1) as u64;
    let out_addr = pbb
        .engine()
        .alloc("spgemm_cells", a.rows().max(1) as u64 * cols * 8);

    // INIT: per-bin tuple counts are *weighted* — each A entry (i, k)
    // contributes nnz(B.row(k)) tuples to row i's bin, so the stock
    // one-per-input counter does not apply.
    pbb.engine().phase(cobra_core::exec::phases::INIT);
    let shift = pbb.bin_shift();
    let mut counts = vec![0u64; pbb.num_bins()];
    {
        let e = pbb.engine();
        let ro = b.row_offsets();
        let nnz = a.nnz();
        let mut idx = 0u64;
        for i in 0..a.rows() {
            for (k, _) in a.row(i) {
                e.load(a_addrs.col_idx.addr(4, idx), 4);
                e.load(b_addrs.row_offsets.addr(4, k as u64), 4);
                e.load(b_addrs.row_offsets.addr(4, k as u64 + 1), 4);
                e.alu(2);
                e.branch(pc::STREAM_LOOP, (idx as usize) + 1 < nnz);
                counts[(i >> shift) as usize] += (ro[k as usize + 1] - ro[k as usize]) as u64;
                idx += 1;
            }
        }
    }
    pbb.presize(&counts);

    pbb.engine().phase(cobra_core::exec::phases::BINNING);
    let rows = a.rows();
    for i in 0..rows {
        pbb.engine().load(a_addrs.row_offsets.addr(4, i as u64), 4);
        pbb.engine()
            .load(a_addrs.row_offsets.addr(4, i as u64 + 1), 4);
        pbb.engine().alu(1);
        pbb.engine().branch(pc::VERTEX_LOOP, i + 1 < rows);
        let lo = a.row_offsets()[i as usize] as u64;
        let cnt = a.row_offsets()[i as usize + 1] as u64 - lo;
        for (ai, (k, av)) in a.row(i).enumerate() {
            pbb.engine()
                .load(a_addrs.col_idx.addr(4, lo + ai as u64), 4);
            pbb.engine().load(a_addrs.values.addr(8, lo + ai as u64), 8);
            pbb.engine()
                .branch(pc::NEIGHBOR_LOOP, (ai as u64) + 1 < cnt);
            pbb.engine().load(b_addrs.row_offsets.addr(4, k as u64), 4);
            pbb.engine()
                .load(b_addrs.row_offsets.addr(4, k as u64 + 1), 4);
            let blo = b.row_offsets()[k as usize] as u64;
            let bcnt = b.row_offsets()[k as usize + 1] as u64 - blo;
            for (bi, (j, bv)) in b.row(k).enumerate() {
                pbb.engine()
                    .load(b_addrs.col_idx.addr(4, blo + bi as u64), 4);
                pbb.engine()
                    .load(b_addrs.values.addr(8, blo + bi as u64), 8);
                pbb.engine().alu(1);
                pbb.engine()
                    .branch(pc::NEIGHBOR_LOOP, (bi as u64) + 1 < bcnt);
                pbb.insert(i, (j, av * bv));
            }
        }
    }
    let storage = pbb.flush_and_take();

    pbb.engine().phase(cobra_core::exec::phases::ACCUMULATE);
    let mut cells = BTreeMap::new();
    let e = pbb.engine();
    let mut iter = storage.iter().peekable();
    while let Some((addr, i, &(j, v))) = iter.next() {
        e.load(addr, TUPLE_BYTES);
        let cell = i as u64 * cols + j as u64;
        e.load(out_addr.addr(8, cell), 8);
        e.alu(1);
        e.store(out_addr.addr(8, cell), 8);
        e.branch(pc::STREAM_LOOP, iter.peek().is_some());
        *cells.entry((i, j)).or_insert(0.0) += v;
    }
    emit_csr(a.rows(), b.cols(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_sim::engine::NullEngine;
    use cobra_sim::MachineConfig;
    use cobra_spgemm::{dyadic_matrix, dyadic_skewed_matrix};

    fn inputs() -> (SparseMatrix, SparseMatrix) {
        (
            dyadic_matrix(700, 500, 5, 31),
            dyadic_skewed_matrix(500, 400, 5, 1.2, 32),
        )
    }

    #[test]
    fn baseline_matches_reference_exactly() {
        let (a, b) = inputs();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &a, &b), reference(&a, &b));
    }

    #[test]
    fn pb_matches_reference_exactly() {
        let (a, b) = inputs();
        let mut pbb = SwPb::<_, (u32, f64)>::new(
            NullEngine::new(),
            a.rows(),
            32,
            TUPLE_BYTES,
            expansion_tuples(&a, &b),
        );
        assert_eq!(pb(&mut pbb, &a, &b), reference(&a, &b));
    }

    #[test]
    fn cobra_matches_reference_exactly() {
        let (a, b) = inputs();
        let mut mach = CobraMachine::<(u32, f64)>::with_defaults(
            MachineConfig::hpca22(),
            a.rows(),
            TUPLE_BYTES,
            expansion_tuples(&a, &b),
        );
        assert_eq!(pb(&mut mach, &a, &b), reference(&a, &b));
    }

    #[test]
    fn expansion_count_matches_trace() {
        let (a, b) = inputs();
        let mut n = 0u64;
        cobra_spgemm::expand(&a, &b, |_, _| n += 1);
        assert_eq!(expansion_tuples(&a, &b), n);
    }
}
