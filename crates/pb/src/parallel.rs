//! Parallel Propagation Blocking: per-thread binning, per-bin accumulate.
//!
//! Parallel PB (paper, Section III-A) simply duplicates all bins and
//! C-Buffers per thread, eliminating synchronization during Binning. The
//! Accumulate phase then parallelizes over *bins*: each bin's key range is
//! disjoint, so threads update disjoint slices of the output without
//! atomics — including for non-commutative kernels.

use crate::binner::{Binner, Bins};

/// The per-thread bins produced by [`bin_parallel`].
#[derive(Debug, Clone)]
pub struct ThreadBins<V> {
    per_thread: Vec<Bins<V>>,
    num_keys: u32,
}

/// Bins `items` in parallel: the item range is split into `threads`
/// contiguous chunks, each binned by its own [`Binner`] into at least
/// `min_bins` bins. `produce` maps an item index to its `(key, value)`
/// update tuple.
///
/// Tuples retain their per-thread insertion order, matching Algorithm 2.
///
/// # Panics
///
/// Panics if `threads == 0`, `num_keys == 0` or a worker panics.
pub fn bin_parallel<V, F>(
    num_items: usize,
    num_keys: u32,
    min_bins: usize,
    threads: usize,
    produce: F,
) -> ThreadBins<V>
where
    V: Copy + Send,
    F: Fn(usize) -> (u32, V) + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let chunk = num_items.div_ceil(threads).max(1);
    let per_thread: Vec<Bins<V>> = std::thread::scope(|s| {
        let produce = &produce;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                #[cfg(feature = "check")]
                let token = crate::trace::fork();
                let handle = s.spawn(move || {
                    #[cfg(feature = "check")]
                    crate::trace::child_start(token);
                    let lo = (t * chunk).min(num_items);
                    let hi = ((t + 1) * chunk).min(num_items);
                    let mut binner = Binner::new(num_keys, min_bins);
                    for i in lo..hi {
                        let (k, v) = produce(i);
                        binner.insert(k, v);
                    }
                    binner.finish()
                });
                #[cfg(feature = "check")]
                let handle = (handle, token);
                handle
            })
            .collect();
        let mut joined = Vec::with_capacity(handles.len());
        for h in handles {
            #[cfg(feature = "check")]
            let bins = {
                let (h, token) = h;
                let bins = h.join().expect("binning worker panicked");
                crate::trace::join(token);
                bins
            };
            #[cfg(not(feature = "check"))]
            let bins = h.join().expect("binning worker panicked");
            joined.push(bins);
        }
        joined
    });
    ThreadBins {
        per_thread,
        num_keys,
    }
}

impl<V: Copy + Send + Sync> ThreadBins<V> {
    /// Wraps pre-built per-thread bins.
    ///
    /// # Panics
    ///
    /// Panics if the threads' bin geometries disagree.
    pub fn from_bins(per_thread: Vec<Bins<V>>, num_keys: u32) -> Self {
        assert!(!per_thread.is_empty(), "need at least one thread's bins");
        let shift = per_thread[0].bin_shift();
        let n = per_thread[0].num_bins();
        assert!(
            per_thread
                .iter()
                .all(|b| b.bin_shift() == shift && b.num_bins() == n),
            "inconsistent bin geometry across threads"
        );
        ThreadBins {
            per_thread,
            num_keys,
        }
    }

    /// Number of bins (identical across threads).
    pub fn num_bins(&self) -> usize {
        self.per_thread[0].num_bins()
    }

    /// Number of producing threads.
    pub fn num_threads(&self) -> usize {
        self.per_thread.len()
    }

    /// log2 of the bin key range.
    pub fn bin_shift(&self) -> u32 {
        self.per_thread[0].bin_shift()
    }

    /// Total tuples across all threads and bins.
    pub fn len(&self) -> usize {
        self.per_thread.iter().map(Bins::len).sum()
    }

    /// Whether no tuples were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key/value column pair of bin `b`, one per producing thread, in
    /// thread order (Algorithm 2's Accumulate iterates exactly this way).
    pub fn bin_slices(&self, b: usize) -> impl Iterator<Item = (&[u32], &[V])> {
        self.per_thread
            .iter()
            .map(move |bins| (bins.keys(b), bins.values(b)))
    }

    /// Serial Accumulate: bins in ascending key order, threads in order
    /// within a bin, tuples in insertion order within a thread.
    pub fn accumulate_serial<F: FnMut(u32, &V)>(&self, mut f: F) {
        for b in 0..self.num_bins() {
            for (keys, values) in self.bin_slices(b) {
                for (&k, v) in keys.iter().zip(values) {
                    f(k, v);
                }
            }
        }
    }

    /// Parallel Accumulate over an output slice indexed by key.
    ///
    /// `data` is split into per-bin chunks of `bin_range` elements; each
    /// worker owns whole bins, so updates need no synchronization. The
    /// closure receives the bin's chunk, the chunk's base key, and each
    /// tuple; tuple order within a bin follows thread order (deterministic
    /// and identical to [`accumulate_serial`](Self::accumulate_serial)).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_keys` or `threads == 0`.
    pub fn accumulate_into<T, F>(&self, data: &mut [T], threads: usize, f: F)
    where
        T: Send,
        F: Fn(&mut [T], u32, u32, &V) + Sync,
    {
        assert_eq!(
            data.len(),
            self.num_keys as usize,
            "data must cover the key domain"
        );
        assert!(threads > 0, "need at least one thread");
        let range = 1usize << self.bin_shift();
        // Distribute bin chunks round-robin across workers.
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (b, chunk) in data.chunks_mut(range).enumerate() {
            per_worker[b % threads].push((b, chunk));
        }
        std::thread::scope(|s| {
            let f = &f;
            let this = &*self;
            let mut handles = Vec::with_capacity(threads);
            for worker in per_worker {
                #[cfg(feature = "check")]
                let token = crate::trace::fork();
                let handle = s.spawn(move || {
                    #[cfg(feature = "check")]
                    crate::trace::child_start(token);
                    for (b, chunk) in worker {
                        let base = (b as u64 * range as u64) as u32;
                        for (keys, values) in this.bin_slices(b) {
                            for (&k, v) in keys.iter().zip(values) {
                                #[cfg(feature = "check")]
                                crate::trace::acc_write(b, k, this.bin_shift());
                                f(chunk, base, k, v);
                            }
                        }
                    }
                });
                #[cfg(feature = "check")]
                let handle = (handle, token);
                handles.push(handle);
            }
            for h in handles {
                #[cfg(feature = "check")]
                {
                    let (h, token) = h;
                    h.join().expect("accumulate worker panicked");
                    crate::trace::join(token);
                }
                #[cfg(not(feature = "check"))]
                h.join().expect("accumulate worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_binning_partitions_all_items() {
        let keys: Vec<u32> = (0..10_000)
            .map(|i| (i * 2654435761u64 % 4096) as u32)
            .collect();
        let tb = bin_parallel(keys.len(), 4096, 16, 4, |i| (keys[i], i as u32));
        assert_eq!(tb.len(), keys.len());
        assert_eq!(tb.num_threads(), 4);
        // Every tuple lives in the bin covering its key, and the two
        // columns of every slice stay parallel.
        for b in 0..tb.num_bins() {
            for (keys, values) in tb.bin_slices(b) {
                assert_eq!(keys.len(), values.len());
                for &k in keys {
                    assert_eq!((k >> tb.bin_shift()) as usize, b);
                }
            }
        }
    }

    #[test]
    fn serial_accumulate_preserves_per_thread_order() {
        // One thread: global order within a bin must equal insertion order.
        let keys = [7u32, 3, 7, 7, 3];
        let tb = bin_parallel(keys.len(), 8, 1, 1, |i| (keys[i], i as u32));
        let mut seen = Vec::new();
        tb.accumulate_serial(|k, &v| {
            if k == 7 {
                seen.push(v);
            }
        });
        assert_eq!(seen, vec![0, 2, 3]);
    }

    #[test]
    fn accumulate_into_matches_serial_histogram() {
        let n_keys = 1 << 12;
        let keys: Vec<u32> = (0..50_000)
            .map(|i| (i * 48271 % n_keys as usize) as u32)
            .collect();
        let tb = bin_parallel(keys.len(), n_keys, 64, 3, |i| (keys[i], 1u32));

        let mut serial = vec![0u32; n_keys as usize];
        tb.accumulate_serial(|k, &v| serial[k as usize] += v);

        let mut parallel = vec![0u32; n_keys as usize];
        tb.accumulate_into(&mut parallel, 4, |chunk, base, key, &v| {
            chunk[(key - base) as usize] += v;
        });
        assert_eq!(serial, parallel);

        // And both match a direct histogram.
        let mut direct = vec![0u32; n_keys as usize];
        for &k in &keys {
            direct[k as usize] += 1;
        }
        assert_eq!(serial, direct);
    }

    #[test]
    fn non_commutative_sequence_build() {
        // Build per-key arrival lists through PB; with a single thread the
        // result must be identical to the direct construction — this is the
        // property that makes PB safe for Neighbor-Populate.
        let n_keys = 256u32;
        let keys: Vec<u32> = (0..5_000).map(|i| (i * 31 % 256) as u32).collect();
        let tb = bin_parallel(keys.len(), n_keys, 8, 1, |i| (keys[i], i as u32));
        let mut via_pb: Vec<Vec<u32>> = vec![Vec::new(); n_keys as usize];
        tb.accumulate_serial(|k, &v| via_pb[k as usize].push(v));
        let mut direct: Vec<Vec<u32>> = vec![Vec::new(); n_keys as usize];
        for (i, &k) in keys.iter().enumerate() {
            direct[k as usize].push(i as u32);
        }
        assert_eq!(via_pb, direct);
    }

    #[test]
    fn works_with_more_threads_than_items() {
        let tb = bin_parallel(3, 16, 2, 8, |i| (i as u32, i as u32));
        assert_eq!(tb.len(), 3);
        let mut total = 0;
        tb.accumulate_serial(|_, _| total += 1);
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_input() {
        let tb = bin_parallel(0, 16, 2, 2, |_| (0u32, 0u32));
        assert!(tb.is_empty());
        let mut data = vec![0u32; 16];
        tb.accumulate_into(&mut data, 2, |c, b, k, &v| c[(k - b) as usize] += v);
        assert!(data.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic]
    fn accumulate_into_rejects_wrong_len() {
        let tb = bin_parallel(1, 16, 2, 1, |i| (i as u32, 0u32));
        let mut data = vec![0u32; 8];
        tb.accumulate_into(&mut data, 1, |_, _, _, _| {});
    }

    #[test]
    #[should_panic]
    fn from_bins_rejects_mismatched_geometry() {
        let a = Binner::<u32>::new(64, 2).finish();
        let b = Binner::<u32>::new(64, 64).finish();
        ThreadBins::from_bins(vec![a, b], 64);
    }
}
