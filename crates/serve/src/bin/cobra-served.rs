//! `cobra-served` — the COBRA service as a standalone process.
//!
//! ```text
//! cobra-served [--addr HOST:PORT] [--keys N] [--shards N]
//!              [--data-dir PATH] [--sync never|onseal|bytes:N]
//!              [--checkpoint-every N] [--epoch-tuples N]
//!              [--retain K] [--retain-secs T]
//! ```
//!
//! `--workers N` is accepted and ignored for script compatibility: the
//! server is now a single-threaded reactor, not a worker pool.
//!
//! `--retain K` keeps the last K published epochs for time-travel reads,
//! diffs and subscriber re-sync (default 1 = latest only); `--retain-secs
//! T` additionally evicts epochs older than T seconds.
//!
//! Prints `ADDR <host:port>` on stdout once the listener is bound (port 0
//! resolves to the real ephemeral port — the recovery e2e test and
//! scripts parse this line), plus a `RECOVERED ...` line in durable mode.
//! Reading `q` (or EOF) on stdin triggers a graceful drain; an abrupt
//! kill is exactly the crash the WAL recovers from.

#![forbid(unsafe_code)]

use cobra_serve::{ServeConfig, Server};
use cobra_stream::{DurableConfig, StreamConfig, SyncPolicy};
use std::io::{BufRead, Write};
use std::process::ExitCode;

struct Options {
    addr: String,
    keys: u32,
    shards: usize,
    data_dir: Option<String>,
    sync: SyncPolicy,
    checkpoint_every: u64,
    epoch_tuples: u64,
    retain: usize,
    retain_secs: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:0".to_string(),
            keys: 1 << 20,
            shards: 4,
            data_dir: None,
            sync: SyncPolicy::OnSeal,
            checkpoint_every: 8,
            epoch_tuples: 0,
            retain: 1,
            retain_secs: None,
        }
    }
}

fn parse_sync(s: &str) -> Result<SyncPolicy, String> {
    if s == "never" {
        return Ok(SyncPolicy::Never);
    }
    if s == "onseal" {
        return Ok(SyncPolicy::OnSeal);
    }
    if let Some(n) = s.strip_prefix("bytes:") {
        let bytes: u64 = n
            .parse()
            .map_err(|_| format!("--sync bytes:N needs a number, got {n:?}"))?;
        return Ok(SyncPolicy::EveryNBytes(bytes));
    }
    Err(format!(
        "--sync must be never, onseal, or bytes:N (got {s:?})"
    ))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i).ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => opts.addr = value(&mut i)?.clone(),
            "--keys" => {
                opts.keys = value(&mut i)?
                    .parse()
                    .map_err(|_| "--keys needs a number".to_string())?
            }
            "--workers" => {
                // Legacy worker-pool knob: still parsed (scripts pass it)
                // but the reactor has no pool to size.
                let _: usize = value(&mut i)?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?;
            }
            "--shards" => {
                opts.shards = value(&mut i)?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?
            }
            "--data-dir" => opts.data_dir = Some(value(&mut i)?.clone()),
            "--sync" => opts.sync = parse_sync(value(&mut i)?)?,
            "--checkpoint-every" => {
                opts.checkpoint_every = value(&mut i)?
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a number".to_string())?
            }
            "--epoch-tuples" => {
                opts.epoch_tuples = value(&mut i)?
                    .parse()
                    .map_err(|_| "--epoch-tuples needs a number".to_string())?
            }
            "--retain" => {
                opts.retain = value(&mut i)?
                    .parse()
                    .map_err(|_| "--retain needs a number".to_string())?;
                if opts.retain == 0 {
                    return Err("--retain must be at least 1 (the latest epoch)".to_string());
                }
            }
            "--retain-secs" => {
                opts.retain_secs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|_| "--retain-secs needs a number".to_string())?,
                )
            }
            "--help" | "-h" => {
                return Err("usage: cobra-served [--addr HOST:PORT] [--keys N] \
                     [--shards N] [--data-dir PATH] \
                     [--sync never|onseal|bytes:N] [--checkpoint-every N] \
                     [--epoch-tuples N] [--retain K] [--retain-secs T]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn run(opts: Options) -> Result<(), String> {
    let mut stream_cfg = StreamConfig::new().shards(opts.shards);
    if opts.epoch_tuples > 0 {
        stream_cfg = stream_cfg.epoch_tuples(opts.epoch_tuples);
    }
    let mut serve_cfg = ServeConfig::new()
        .addr(&opts.addr)
        .retain_epochs(opts.retain);
    if let Some(secs) = opts.retain_secs {
        serve_cfg = serve_cfg.retain_age(std::time::Duration::from_secs(secs));
    }
    if let Some(dir) = &opts.data_dir {
        serve_cfg = serve_cfg.durable(
            DurableConfig::new(dir)
                .sync(opts.sync)
                .checkpoint_every(opts.checkpoint_every),
        );
    }

    let server = Server::start(opts.keys, stream_cfg, serve_cfg)
        .map_err(|e| format!("failed to start server: {e}"))?;
    let mut out = std::io::stdout();
    if let Some(report) = server.recovery() {
        let _ = writeln!(
            out,
            "RECOVERED epoch={} checkpoint={} records={} tuples={}",
            report.committed_epoch,
            report.checkpoint_epoch,
            report.replayed_records,
            report.replayed_tuples
        );
    }
    // Scripts and tests block on this line to learn the ephemeral port.
    let _ = writeln!(out, "ADDR {}", server.local_addr());
    let _ = out.flush();

    // Serve until stdin says quit (or closes). A SIGKILL instead of `q`
    // is the crash path the durability tests exercise.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "q" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let (snapshot, stats) = server.shutdown();
    let _ = writeln!(
        out,
        "DRAINED epoch={} tuples={} wal_bytes={}",
        snapshot.epoch(),
        stats.tuples_ingested,
        stats.wal_bytes_appended
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
