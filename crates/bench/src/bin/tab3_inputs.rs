//! Table III: the (scaled) input suite.

#![forbid(unsafe_code)]

use cobra_bench::{inputs, Scale, Table};
use cobra_kernels::{Input, KernelId};

fn main() {
    let scale = Scale::from_args();
    println!("scale: {scale:?}");
    let mut t = Table::new(
        "Table III: Input graphs and matrices (scaled stand-ins; DESIGN.md §2)",
        &["name", "class", "vertices/rows", "edges/nnz", "max degree"],
    );
    for ni in inputs::graph_suite(scale) {
        if let Input::Graph { el, .. } = &ni.input {
            let class = match ni.name.as_str() {
                "DBP'" => "power-law (RMAT)",
                "KRON'" => "Graph500 Kronecker",
                "URND'" => "uniform random",
                "EURO'" => "road mesh (bounded degree)",
                "HBUBL'" => "extreme skew (Zipf)",
                _ => "graph",
            };
            let max_deg = el.degrees().into_iter().max().unwrap_or(0);
            t.row(vec![
                ni.name.clone(),
                class.into(),
                el.num_vertices().to_string(),
                el.num_edges().to_string(),
                max_deg.to_string(),
            ]);
        }
    }
    for ni in inputs::matrix_suite(scale) {
        if let Input::Matrix { m, .. } = &ni.input {
            let class = match ni.name.as_str() {
                "HPCG'" => "27-pt stencil (HPCG)",
                "RAND'" => "uniform sparse",
                "BAND'" => "banded (simulation)",
                "PLAW'" => "power-law columns",
                _ => "matrix",
            };
            let max_row = (0..m.rows())
                .map(|r| m.row_offsets()[r as usize + 1] - m.row_offsets()[r as usize])
                .max()
                .unwrap_or(0);
            t.row(vec![
                ni.name.clone(),
                class.into(),
                m.rows().to_string(),
                m.nnz().to_string(),
                max_row.to_string(),
            ]);
        }
    }
    let s = inputs::sort_input(scale);
    if let Input::Keys { keys, max_key } = &s.input {
        t.row(vec![
            s.name.clone(),
            "uniform random keys".into(),
            max_key.to_string(),
            keys.len().to_string(),
            "-".into(),
        ]);
    }
    let _ = KernelId::DegreeCount;
    t.print();
    t.write_csv("tab3_inputs");
}
