//! Std-only CRC32 (IEEE 802.3 / zlib polynomial, reflected form).
//!
//! The workspace is dependency-free by policy, so the WAL carries its own
//! table-driven implementation: a 256-entry table built at compile time,
//! one table lookup per input byte. This is the same checksum `gzip` and
//! `zip` use, so golden values are easy to cross-check (`crc32(b"123456789")
//! == 0xCBF4_3926`).

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state, for checksumming data produced in pieces
/// (the checkpoint writer streams segments through one of these).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_vectors() {
        // The canonical IEEE check value, plus a couple of edges.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        for chunk in data.chunks(7) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn flipping_any_bit_changes_the_checksum() {
        let data = b"cobra-wal";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = *data;
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "bit {bit} of byte {i}");
            }
        }
    }
}
