//! Figure 5: the headroom of idealized PB (PB-SW-IDEAL) — each phase run at
//! its own best bin count — over realizable software PB.

#![forbid(unsafe_code)]

use cobra_bench::{inputs, report, Scale, Table};
use cobra_core::exec::{geomean, phases, RunMetrics};
use cobra_kernels::{bin_choices, run, ModeSpec, ALL_KERNELS};
use cobra_sim::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let mut t = Table::new(
        "Figure 5: speedup over Baseline — PB-SW vs PB-SW-IDEAL",
        &["kernel", "input", "PB-SW", "PB-SW-IDEAL", "ideal/PB"],
    );
    let mut pb_speedups = Vec::new();
    let mut ideal_speedups = Vec::new();
    for &k in &ALL_KERNELS {
        let ni = inputs::representative_input(k, scale);
        let choices = bin_choices(k, &ni.input, &machine);
        let baseline = run(k, &ni.input, &ModeSpec::Baseline, &machine);
        let mut candidates = vec![
            choices.binning_ideal,
            choices.sweet_spot,
            choices.accumulate_ideal,
        ];
        candidates.dedup();
        let pb_runs: Vec<RunMetrics> = candidates
            .iter()
            .map(|&bins| {
                let o = run(k, &ni.input, &ModeSpec::PbSw { min_bins: bins }, &machine);
                assert_eq!(o.digest, baseline.digest, "{}", k.name());
                o.metrics
            })
            .collect();
        let pb_sw = pb_runs.iter().min_by_key(|m| m.cycles()).expect("pb run");
        let best_bin = pb_runs
            .iter()
            .min_by_key(|m| m.phase_cycles(phases::BINNING))
            .expect("pb run");
        let best_acc = pb_runs
            .iter()
            .min_by_key(|m| m.phase_cycles(phases::ACCUMULATE))
            .expect("pb run");
        let ideal = RunMetrics::splice_ideal(best_bin, best_acc);
        let s_pb = pb_sw.speedup_over(&baseline.metrics);
        let s_ideal = ideal.speedup_over(&baseline.metrics);
        pb_speedups.push(s_pb);
        ideal_speedups.push(s_ideal);
        t.row(vec![
            k.name().into(),
            ni.name,
            report::f2(s_pb),
            report::f2(s_ideal),
            report::f2(s_ideal / s_pb),
        ]);
        eprintln!("[done] {}", k.name());
    }
    t.row(vec![
        "GEOMEAN".into(),
        "-".into(),
        report::f2(geomean(pb_speedups.iter().copied())),
        report::f2(geomean(ideal_speedups.iter().copied())),
        report::f2(geomean(
            pb_speedups.iter().zip(&ideal_speedups).map(|(p, i)| i / p),
        )),
    ]);
    t.print();
    t.write_csv("fig05_ideal_headroom");
    println!(
        "\nShape check (paper Fig. 5): PB-SW-IDEAL adds ~1.2x mean headroom over\n\
         PB-SW — the gap COBRA's hierarchical C-Buffers close."
    );
}
