//! cobra-check: dynamic and static checking for the PB/stream stack.
//!
//! Three analyses, one crate (paper, Section III-B: correctness of
//! propagation blocking rests on bin disjointness, epoch alignment and
//! declared commutativity — this crate re-proves all three mechanically):
//!
//! 1. [`race`] — a FastTrack-style vector-clock detector over the event
//!    logs emitted by the `check`-instrumented binning/accumulate paths
//!    ([`fixtures`] drives the real machinery and captures the logs), plus
//!    routing/ownership invariant checks on every recorded write.
//! 2. [`oracle`] — commutativity oracles: replay each kernel's scatter
//!    function and each streaming reducer under permuted update orders and
//!    compare the observation against the declared commutative/ordered
//!    mode.
//! 3. [`explore`] — a dependency-free bounded schedule explorer (mini
//!    loom) that exhausts every interleaving of small configurations of
//!    the `cobra-stream` channel/seal/epoch protocol; [`cluster`] applies
//!    the same technique to `cobra-cluster`'s cross-node seal/commit
//!    barrier (a cluster snapshot never publishes before every node's
//!    `EpochCommit`), and [`subs`] to `cobra-mvcc`'s subscription
//!    fan-out (bounded queues + lossless lag markers: delivery is
//!    gap-free and per-epoch ordered in every schedule).
//!
//! [`lint`] adds source-level invariant linting (ordering justifications,
//! hot-path panic hygiene, no locks on binning paths, unsafe audit,
//! stale-suppression detection), and [`analyze`] is the cross-crate
//! static analyzer (cobra-analyze): a dependency-free lexer, function
//! table and conservative call graph feeding rules R5–R8 (lock-order
//! cycles, commit-before-publish dominance, wire-protocol
//! exhaustiveness, atomics release/acquire pairing).
//!
//! The `cobra-check` binary exposes each analysis as a subcommand and
//! `all` runs the full battery; any violation exits non-zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cluster;
pub mod explore;
pub mod fixtures;
pub mod lint;
pub mod oracle;
pub mod race;
pub mod subs;
