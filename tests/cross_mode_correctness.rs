//! Cross-crate integration: every kernel must produce identical results
//! under Baseline, software PB (several bin counts) and COBRA — including
//! the non-commutative kernels, which is the paper's central generality
//! claim (Section III-B).

use cobra_repro::graph::{gen, matrix};
use cobra_repro::kernels::{run, Input, KernelId, ModeSpec, ALL_KERNELS};
use cobra_repro::sim::MachineConfig;

fn input_for(k: KernelId, seed: u64) -> Input {
    use KernelId::*;
    match k {
        DegreeCount | NeighborPopulate | Pagerank | Radii => {
            Input::graph(gen::uniform_random(20_000, 120_000, seed))
        }
        IntSort => Input::keys(gen::random_keys(30_000, 1 << 14, seed), 1 << 14),
        Spmv | Transpose | Pinv | SymPerm => Input::matrix(matrix::random_uniform(5_000, 6, seed)),
        // Small and dyadic-valued: the expansion phase squares the per-row
        // density, and dyadic products keep every fold order bit-exact.
        SpGemm => Input::matrix(cobra_repro::spgemm::dyadic_matrix(2_000, 2_000, 4, seed)),
    }
}

#[test]
fn all_kernels_agree_across_modes_and_bin_counts() {
    let machine = MachineConfig::hpca22();
    for &k in &ALL_KERNELS {
        let input = input_for(k, 0xA11CE);
        let base = run(k, &input, &ModeSpec::Baseline, &machine);
        for bins in [1, 16, 512, 4096] {
            let pb = run(k, &input, &ModeSpec::PbSw { min_bins: bins }, &machine);
            assert_eq!(
                pb.digest,
                base.digest,
                "{} with {bins} bins diverged from baseline",
                k.name()
            );
        }
        let cobra = run(k, &input, &ModeSpec::cobra_default(), &machine);
        assert_eq!(
            cobra.digest,
            base.digest,
            "{} under COBRA diverged",
            k.name()
        );
    }
}

#[test]
fn skewed_inputs_preserve_correctness() {
    // Power-law/Zipf inputs exercise hot-bin paths (C-Buffer eviction
    // bursts, coalescing windows).
    let machine = MachineConfig::hpca22();
    for &k in &[
        KernelId::DegreeCount,
        KernelId::NeighborPopulate,
        KernelId::Pagerank,
    ] {
        let input = Input::graph(gen::zipf(16_000, 100_000, 1.2, 7));
        let base = run(k, &input, &ModeSpec::Baseline, &machine);
        let cobra = run(k, &input, &ModeSpec::cobra_default(), &machine);
        assert_eq!(base.digest, cobra.digest, "{}", k.name());
    }
}

#[test]
fn mesh_inputs_preserve_correctness() {
    let machine = MachineConfig::hpca22();
    for &k in &[KernelId::NeighborPopulate, KernelId::Radii] {
        let input = Input::graph(gen::road_mesh(120, 3));
        let base = run(k, &input, &ModeSpec::Baseline, &machine);
        let pb = run(k, &input, &ModeSpec::PbSw { min_bins: 64 }, &machine);
        assert_eq!(base.digest, pb.digest, "{}", k.name());
    }
}

#[test]
fn cobra_with_context_switches_is_still_correct() {
    // Forced partial-line evictions must never lose or duplicate tuples.
    let machine = MachineConfig::hpca22();
    let input = input_for(KernelId::NeighborPopulate, 0xC7C7);
    let base = run(
        KernelId::NeighborPopulate,
        &input,
        &ModeSpec::Baseline,
        &machine,
    );
    let spec = ModeSpec::Cobra {
        reserved: None,
        des: cobra_repro::cobra::DesConfig::paper_default(),
        ctx_quantum: Some(10_000),
    };
    let cobra = run(KernelId::NeighborPopulate, &input, &spec, &machine);
    assert_eq!(base.digest, cobra.digest);
}

#[test]
fn cobra_with_minimal_buffers_is_still_correct() {
    // A 1-entry eviction buffer stalls constantly but must not corrupt bins.
    let machine = MachineConfig::hpca22();
    let input = input_for(KernelId::IntSort, 0x50F7);
    let base = run(KernelId::IntSort, &input, &ModeSpec::Baseline, &machine);
    let spec = ModeSpec::Cobra {
        reserved: None,
        des: cobra_repro::cobra::DesConfig {
            l1_evict_entries: 1,
            l2_evict_entries: 1,
        },
        ctx_quantum: None,
    };
    let cobra = run(KernelId::IntSort, &input, &spec, &machine);
    assert_eq!(base.digest, cobra.digest);
}

#[test]
fn non_default_way_reservations_are_correct() {
    let machine = MachineConfig::hpca22();
    let input = input_for(KernelId::Transpose, 0x7A57);
    let base = run(KernelId::Transpose, &input, &ModeSpec::Baseline, &machine);
    for (l1, l2, llc) in [(1, 1, 1), (4, 4, 8), (7, 7, 15)] {
        let spec = ModeSpec::Cobra {
            reserved: Some(cobra_repro::cobra::ReservedWays { l1, l2, llc }),
            des: cobra_repro::cobra::DesConfig::paper_default(),
            ctx_quantum: None,
        };
        let cobra = run(KernelId::Transpose, &input, &spec, &machine);
        assert_eq!(base.digest, cobra.digest, "reservation ({l1},{l2},{llc})");
    }
}
