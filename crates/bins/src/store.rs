//! The structure-of-arrays bin store and its slab accounting.
//!
//! A [`BinStore`] keeps one pair of contiguous columns per bin — `keys`
//! and `values` — instead of a `Vec` of `(key, value)` tuples. The
//! Accumulate phase therefore streams two dense arrays with unit stride,
//! and a bin's routing data (its keys) packs 16 entries per cache line
//! regardless of payload size. Column capacity is acquired in slab
//! *segments* of [`SEGMENT_BYTES`] (whole cache lines), which makes bin
//! memory easy to meter ([`BinStore::memory`]) and keeps growth
//! amortised without per-tuple allocator traffic.
//!
//! Publishing is O(1): [`BinStore::freeze`] moves the store behind an
//! `Arc` ([`FrozenBins`]); every downstream consumer — epoch snapshots,
//! caches, oracle replays — shares the same slabs by reference count.

use std::sync::Arc;

/// One slab segment: 64 cache lines. Column capacity is acquired in
/// whole segments so allocation count and footprint are meterable.
pub const SEGMENT_BYTES: usize = 4096;

/// Computes the power-of-two bin geometry every binning layer uses:
/// for keys in `0..num_keys` and at least `min(min_bins, num_keys)`
/// bins, returns `(bin_shift, num_bins)` with the per-bin key range
/// equal to `1 << bin_shift` (routing is a shift, never a division —
/// paper, Section V-A).
///
/// # Panics
///
/// Panics if `num_keys == 0` or `min_bins == 0`.
pub fn bin_geometry(num_keys: u32, min_bins: usize) -> (u32, usize) {
    assert!(num_keys > 0, "need at least one key");
    assert!(min_bins > 0, "need at least one bin");
    let min_bins = (min_bins as u64).min(num_keys as u64);
    // Largest power-of-two range with ceil(num_keys / range) >= min_bins.
    let mut range = (num_keys as u64).div_ceil(min_bins).next_power_of_two();
    if (num_keys as u64).div_ceil(range) < min_bins && range > 1 {
        range /= 2;
    }
    let shift = range.trailing_zeros();
    let num_bins = (num_keys as u64).div_ceil(range) as usize;
    (shift, num_bins)
}

/// One bin's columns. Kept private so growth always goes through the
/// segment-granular path.
#[derive(Debug, Clone)]
struct Column<V> {
    keys: Vec<u32>,
    values: Vec<V>,
}

impl<V> Default for Column<V> {
    fn default() -> Self {
        Column {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }
}

/// Bin-memory accounting snapshot (see [`BinStore::memory`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinMemory {
    /// Bytes of column capacity currently allocated across all bins.
    pub bytes: u64,
    /// Tuples currently stored.
    pub tuples: u64,
    /// Slab segments ([`SEGMENT_BYTES`] each, rounded up per bin)
    /// backing the allocated capacity.
    pub segments: u64,
}

impl BinMemory {
    /// Component-wise sum, for aggregating per-shard stores.
    pub fn add(&mut self, other: BinMemory) {
        self.bytes += other.bytes;
        self.tuples += other.tuples;
        self.segments += other.segments;
    }
}

/// The write side of a bin layer: exact-count reservation (fed by the
/// Init phase's counting pre-pass) plus routed insertion.
pub trait BinSink<V> {
    /// Pre-reserves per-bin capacity from exact counts.
    fn reserve(&mut self, counts: &[u32]);
    /// Routes one `(key, value)` tuple to its bin.
    fn insert(&mut self, key: u32, value: V);
}

/// The read side of a bin layer: columnar access to each bin.
pub trait BinReader<V> {
    /// Number of bins.
    fn num_bins(&self) -> usize;
    /// log2 of the per-bin key range.
    fn bin_shift(&self) -> u32;
    /// The key column of bin `b`, in insertion order.
    fn bin_keys(&self, b: usize) -> &[u32];
    /// The value column of bin `b`, in insertion order.
    fn bin_values(&self, b: usize) -> &[V];

    /// Tuples in bin `b`.
    fn bin_len(&self, b: usize) -> usize {
        self.bin_keys(b).len()
    }

    /// Total tuples across bins.
    fn total_len(&self) -> usize {
        (0..self.num_bins()).map(|b| self.bin_len(b)).sum()
    }
}

/// Structure-of-arrays bins: per-bin contiguous `keys`/`values` columns
/// with segment-granular capacity growth. This is the single bin
/// representation shared by `cobra-pb`, `cobra-core`, `cobra-stream`
/// and `cobra-serve`.
///
/// The store routes nothing on its own ([`BinStore::push`] takes an
/// explicit bin index) so checker fixtures can represent routing
/// violations; use [`BinStore::insert`] (or a `Binner`'s C-Buffers) for
/// shift-routed writes.
#[derive(Debug, Clone)]
pub struct BinStore<V> {
    shift: u32,
    num_keys: u32,
    bins: Vec<Column<V>>,
    /// Slab-segment acquisitions since creation (growth events).
    grows: u64,
}

impl<V> BinStore<V> {
    /// A store with the workspace-standard geometry for `num_keys` keys
    /// and at least `min(min_bins, num_keys)` bins (see [`bin_geometry`]).
    pub fn new(num_keys: u32, min_bins: usize) -> Self {
        let (shift, num_bins) = bin_geometry(num_keys, min_bins);
        Self::with_geometry(shift, num_keys, num_bins)
    }

    /// A store with explicit geometry. `num_bins` is taken as given (it
    /// may exceed `ceil(num_keys >> shift)`; simulated backends size
    /// bins to hardware structures, and fixtures misroute on purpose).
    ///
    /// # Panics
    ///
    /// Panics if `num_bins == 0`.
    pub fn with_geometry(shift: u32, num_keys: u32, num_bins: usize) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        BinStore {
            shift,
            num_keys,
            bins: (0..num_bins).map(|_| Column::default()).collect(),
            grows: 0,
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// log2 of the per-bin key range.
    pub fn bin_shift(&self) -> u32 {
        self.shift
    }

    /// Number of keys per bin (a power of two).
    pub fn bin_range(&self) -> u64 {
        1u64 << self.shift
    }

    /// The key domain is `0..num_keys`.
    pub fn num_keys(&self) -> u32 {
        self.num_keys
    }

    /// The key range covered by bin `b`.
    pub fn key_range(&self, b: usize) -> std::ops::Range<u32> {
        let lo = (b as u64) << self.shift;
        let hi = ((b as u64 + 1) << self.shift).min(self.num_keys as u64);
        lo as u32..hi as u32
    }

    /// The key column of bin `b`, in insertion order.
    pub fn keys(&self, b: usize) -> &[u32] {
        &self.bins[b].keys
    }

    /// The value column of bin `b`, in insertion order.
    pub fn values(&self, b: usize) -> &[V] {
        &self.bins[b].values
    }

    /// Tuples in bin `b`.
    pub fn bin_len(&self, b: usize) -> usize {
        self.bins[b].keys.len()
    }

    /// Total tuples across bins.
    pub fn len(&self) -> usize {
        self.bins.iter().map(|c| c.keys.len()).sum()
    }

    /// Whether no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(|c| c.keys.is_empty())
    }

    /// Borrowed iteration over bin `b`'s tuples in insertion order —
    /// zips the two columns without materialising tuple structs.
    pub fn iter_bin(
        &self,
        b: usize,
    ) -> std::iter::Zip<std::slice::Iter<'_, u32>, std::slice::Iter<'_, V>> {
        self.bins[b].keys.iter().zip(self.bins[b].values.iter())
    }

    /// Replays every bin in bin order, tuples in insertion order (the
    /// Accumulate phase, serial): two-column streaming, unit stride.
    pub fn accumulate<F: FnMut(u32, &V)>(&self, mut f: F) {
        for c in &self.bins {
            for (&k, v) in c.keys.iter().zip(c.values.iter()) {
                f(k, v);
            }
        }
    }

    /// Current bin-memory footprint: allocated column bytes, stored
    /// tuples, and backing slab segments.
    pub fn memory(&self) -> BinMemory {
        let val_bytes = std::mem::size_of::<V>();
        let mut m = BinMemory::default();
        for c in &self.bins {
            let bytes = (c.keys.capacity() * std::mem::size_of::<u32>()
                + if val_bytes == 0 {
                    0
                } else {
                    c.values.capacity() * val_bytes
                }) as u64;
            m.bytes += bytes;
            m.tuples += c.keys.len() as u64;
            m.segments += bytes.div_ceil(SEGMENT_BYTES as u64);
        }
        m
    }

    /// Slab-segment acquisitions (growth events) since creation.
    pub fn grow_events(&self) -> u64 {
        self.grows
    }

    /// Drops all tuples, keeping geometry and allocated capacity.
    pub fn clear(&mut self) {
        for c in &mut self.bins {
            c.keys.clear();
            c.values.clear();
        }
    }

    /// Swaps the filled columns out, leaving this store empty with the
    /// same geometry (the double-buffering hook behind `take_bins`).
    pub fn take(&mut self) -> BinStore<V> {
        let fresh = (0..self.bins.len()).map(|_| Column::default()).collect();
        let bins = std::mem::replace(&mut self.bins, fresh);
        BinStore {
            shift: self.shift,
            num_keys: self.num_keys,
            bins,
            grows: std::mem::take(&mut self.grows),
        }
    }

    /// Freezes the store behind an `Arc`: O(1), no copy of any column.
    pub fn freeze(self) -> FrozenBins<V> {
        FrozenBins(Arc::new(self))
    }

    /// Grows bin `b` so `extra` more tuples fit, acquiring capacity in
    /// whole slab segments (amortised doubling, never per-tuple).
    fn ensure(&mut self, b: usize, extra: usize) {
        let c = &mut self.bins[b];
        let needed = c.keys.len() + extra;
        if needed <= c.keys.capacity() {
            return;
        }
        let tuple_bytes = (std::mem::size_of::<u32>() + std::mem::size_of::<V>()).max(1);
        let seg_tuples = (SEGMENT_BYTES / tuple_bytes).max(1);
        let target = needed.max(c.keys.capacity() * 2).div_ceil(seg_tuples) * seg_tuples;
        c.keys.reserve_exact(target - c.keys.len());
        if std::mem::size_of::<V>() > 0 {
            c.values.reserve_exact(target - c.values.len());
        }
        self.grows += 1;
    }

    /// Appends one tuple to bin `b` (no routing — `b` is the caller's).
    #[inline]
    pub fn push(&mut self, b: usize, key: u32, value: V) {
        if self.bins[b].keys.len() == self.bins[b].keys.capacity() {
            self.ensure(b, 1);
        }
        let c = &mut self.bins[b];
        c.keys.push(key);
        c.values.push(value);
    }

    /// Routes one tuple by the store's bin shift and appends it.
    #[inline]
    pub fn insert(&mut self, key: u32, value: V) {
        let b = (key >> self.shift) as usize;
        self.push(b, key, value);
    }

    /// Pre-reserves per-bin capacity from exact counts (Init pre-pass).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != num_bins()`.
    pub fn reserve(&mut self, counts: &[u32]) {
        assert_eq!(counts.len(), self.bins.len(), "one count per bin");
        for (b, &c) in counts.iter().enumerate() {
            self.ensure(b, c as usize);
        }
    }
}

impl<V: Copy> BinStore<V> {
    /// Bulk-appends parallel key/value slices to bin `b` (the C-Buffer
    /// full-line transfer).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != values.len()`.
    #[inline]
    pub fn extend_bin(&mut self, b: usize, keys: &[u32], values: &[V]) {
        assert_eq!(keys.len(), values.len(), "parallel columns");
        self.ensure(b, keys.len());
        let c = &mut self.bins[b];
        c.keys.extend_from_slice(keys);
        c.values.extend_from_slice(values);
    }
}

impl<V: PartialEq> PartialEq for BinStore<V> {
    /// Content equality: geometry and column contents (growth history
    /// and spare capacity are not observable).
    fn eq(&self, other: &Self) -> bool {
        self.shift == other.shift
            && self.num_keys == other.num_keys
            && self.bins.len() == other.bins.len()
            && self
                .bins
                .iter()
                .zip(other.bins.iter())
                .all(|(a, b)| a.keys == b.keys && a.values == b.values)
    }
}

impl<V: Eq> Eq for BinStore<V> {}

impl<V> BinSink<V> for BinStore<V> {
    fn reserve(&mut self, counts: &[u32]) {
        BinStore::reserve(self, counts);
    }

    fn insert(&mut self, key: u32, value: V) {
        BinStore::insert(self, key, value);
    }
}

impl<V> BinReader<V> for BinStore<V> {
    fn num_bins(&self) -> usize {
        self.bins.len()
    }

    fn bin_shift(&self) -> u32 {
        self.shift
    }

    fn bin_keys(&self, b: usize) -> &[u32] {
        &self.bins[b].keys
    }

    fn bin_values(&self, b: usize) -> &[V] {
        &self.bins[b].values
    }
}

/// An immutable, reference-counted [`BinStore`]: cloning is O(1) and
/// every clone shares the same column slabs ([`FrozenBins::ptr_eq`]
/// observes the sharing). This is how bins travel from `take_bins`
/// through epoch snapshots to caches without a single deep copy.
#[derive(Debug)]
pub struct FrozenBins<V>(Arc<BinStore<V>>);

impl<V> Clone for FrozenBins<V> {
    fn clone(&self) -> Self {
        FrozenBins(Arc::clone(&self.0))
    }
}

impl<V> std::ops::Deref for FrozenBins<V> {
    type Target = BinStore<V>;

    fn deref(&self) -> &BinStore<V> {
        &self.0
    }
}

impl<V> FrozenBins<V> {
    /// Whether two handles share the same slabs (zero-copy witness).
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Live handles to the shared store.
    pub fn handle_count(this: &Self) -> usize {
        Arc::strong_count(&this.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_reference_rounding() {
        // (num_keys, min_bins) -> (range, num_bins) from the seed Binner.
        for (num_keys, min_bins, range, bins) in [
            (100u32, 4usize, 32u64, 4usize),
            (64, 1, 64, 1),
            (4, 100, 1, 4),
            (8, 8, 1, 8),
            (1000, 7, 128, 8),
            (1, 1, 1, 1),
            (1, 64, 1, 1),
        ] {
            let (shift, n) = bin_geometry(num_keys, min_bins);
            assert_eq!(1u64 << shift, range, "range for ({num_keys},{min_bins})");
            assert_eq!(n, bins, "bins for ({num_keys},{min_bins})");
        }
    }

    #[test]
    fn geometry_guarantees_min_bins() {
        for (num_keys, min_bins) in [
            (1u32, 1usize),
            (1, 64),
            (4, 100),
            (5, 5),
            (7, 3),
            (1000, 1000),
            (1000, 4096),
        ] {
            let (_, n) = bin_geometry(num_keys, min_bins);
            assert!(n >= min_bins.min(num_keys as usize));
        }
    }

    #[test]
    fn push_routes_nothing_insert_routes_by_shift() {
        let mut s = BinStore::<u8>::new(100, 4);
        assert_eq!(s.bin_range(), 32);
        s.insert(40, 7); // bin 1
        s.push(3, 2, 9); // misplaced on purpose: push takes the caller's bin
        assert_eq!(s.keys(1), &[40]);
        assert_eq!(s.keys(3), &[2]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn columns_stay_parallel_and_ordered() {
        let mut s = BinStore::<u32>::new(256, 4);
        for k in [200u32, 10, 100, 11, 201] {
            s.insert(k, k * 2);
        }
        assert_eq!(s.keys(0), &[10, 11]);
        assert_eq!(s.values(0), &[20, 22]);
        assert_eq!(s.keys(3), &[200, 201]);
        let pairs: Vec<(u32, u32)> = s.iter_bin(3).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(200, 400), (201, 402)]);
    }

    #[test]
    fn accumulate_streams_bins_in_key_order() {
        let mut s = BinStore::<u32>::new(256, 4);
        for k in [200u32, 10, 100, 11, 201] {
            s.insert(k, k);
        }
        let mut seen = Vec::new();
        s.accumulate(|k, _| seen.push(k >> s.bin_shift()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn reserve_acquires_whole_segments() {
        let mut s = BinStore::<u32>::new(1 << 20, 4);
        s.reserve(&[100, 0, 5000, 1]);
        let m = s.memory();
        // (4 + 4)-byte tuples -> 512 tuples per 4 KiB segment.
        assert_eq!(s.grow_events(), 3, "three non-zero counts grew");
        assert!(m.bytes >= (100 + 5000 + 1) * 8);
        assert_eq!(
            m.bytes % SEGMENT_BYTES as u64 / 8,
            m.bytes % SEGMENT_BYTES as u64 / 8
        );
        assert_eq!(m.tuples, 0);
        assert!(m.segments >= 3);
        let grows_before = s.grow_events();
        for k in 0..100u32 {
            s.push(0, k, k);
        }
        assert_eq!(s.grow_events(), grows_before, "reserved bin never regrows");
    }

    #[test]
    fn growth_is_segment_granular_not_per_tuple() {
        let mut s = BinStore::<u64>::new(64, 1);
        for k in 0..10_000u32 {
            s.insert(k % 64, k as u64);
        }
        assert_eq!(s.len(), 10_000);
        // 12-byte tuples -> 341 per segment; doubling keeps events ~log.
        assert!(
            s.grow_events() <= 12,
            "expected amortised growth, saw {} events",
            s.grow_events()
        );
        let m = s.memory();
        assert_eq!(m.tuples, 10_000);
        assert!(m.segments > 0);
    }

    #[test]
    fn zero_sized_values_cost_no_value_bytes() {
        let mut s = BinStore::<()>::new(1024, 4);
        for k in 0..1000u32 {
            s.insert(k, ());
        }
        let m = s.memory();
        assert_eq!(m.tuples, 1000);
        // Only the key column occupies memory.
        assert!(m.bytes >= 1000 * 4);
        assert!(m.bytes < 16 * SEGMENT_BYTES as u64);
    }

    #[test]
    fn take_preserves_geometry_and_resets_contents() {
        let mut s = BinStore::<u32>::new(100, 4);
        for k in 0..100u32 {
            s.insert(k, k);
        }
        let taken = s.take();
        assert_eq!(taken.len(), 100);
        assert_eq!(s.len(), 0);
        assert_eq!(s.num_bins(), taken.num_bins());
        assert_eq!(s.bin_shift(), taken.bin_shift());
        s.insert(99, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn freeze_is_zero_copy_sharing() {
        let mut s = BinStore::<u32>::new(64, 2);
        for k in 0..64u32 {
            s.insert(k, k);
        }
        let keys_ptr = s.keys(0).as_ptr();
        let frozen = s.freeze();
        let a = frozen.clone();
        let b = a.clone();
        assert!(FrozenBins::ptr_eq(&frozen, &a));
        assert!(FrozenBins::ptr_eq(&a, &b));
        assert_eq!(FrozenBins::handle_count(&frozen), 3);
        // The column slab itself never moved or copied.
        assert_eq!(b.keys(0).as_ptr(), keys_ptr);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn content_equality_ignores_capacity_history() {
        let mut a = BinStore::<u32>::new(64, 2);
        let mut b = BinStore::<u32>::new(64, 2);
        b.reserve(&[1000; 2]);
        for k in 0..64u32 {
            a.insert(k, k);
            b.insert(k, k);
        }
        assert_eq!(a, b);
        b.push(0, 1, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn sink_and_reader_traits_cover_the_store() {
        fn fill<S: BinSink<u16>>(s: &mut S) {
            s.reserve(&[2, 2]);
            s.insert(0, 1);
            s.insert(40, 2);
        }
        let mut s = BinStore::<u16>::new(64, 2);
        fill(&mut s);
        let r: &dyn BinReader<u16> = &s;
        assert_eq!(r.num_bins(), 2);
        assert_eq!(r.bin_keys(1), &[40]);
        assert_eq!(r.bin_values(1), &[2]);
        assert_eq!(r.bin_len(0), 1);
        assert_eq!(r.total_len(), 2);
    }

    #[test]
    fn ragged_last_bin_key_range() {
        let s = BinStore::<u32>::new(100, 4);
        assert_eq!(s.key_range(3), 96..100);
        assert_eq!(s.key_range(0), 0..32);
    }
}
