//! Acceptance gate: on a ≥1M-nonzero input, fused, unfused, and streaming
//! SpGEMM produce bit-identical CSR.

#![forbid(unsafe_code)]

use cobra_spgemm::{
    dyadic_matrix, dyadic_skewed_matrix, spgemm, spgemm_stream, triplets, SpGemmConfig,
};
use cobra_stream::StreamConfig;

#[test]
fn million_nnz_fused_unfused_and_streaming_are_bit_identical() {
    // A: 2^17 rows × 8 nnz/row = 1,048,576 nonzeros (≥ 1M). B's skewed
    // columns make fusion actually fire.
    let a = dyadic_matrix(1 << 17, 1 << 14, 8, 101);
    let b = dyadic_skewed_matrix(1 << 14, 1 << 14, 4, 1.2, 102);
    assert!(a.nnz() >= 1_000_000, "A has only {} nnz", a.nnz());

    let (fused, rep_f) = spgemm(&a, &b, &SpGemmConfig::default());
    let (unfused, rep_u) = spgemm(
        &a,
        &b,
        &SpGemmConfig {
            fusion: false,
            ..Default::default()
        },
    );
    let (streamed, stats) = spgemm_stream(&a, &b, 8, StreamConfig::default());

    assert!(rep_f.fuse.hits > 0, "fusion never fired");
    assert!(
        rep_f.bin_traffic_bytes < rep_u.bin_traffic_bytes,
        "fusion must reduce bin traffic: {} vs {}",
        rep_f.bin_traffic_bytes,
        rep_u.bin_traffic_bytes
    );
    assert!(stats.epochs_sealed >= 8);

    let want = triplets(&unfused);
    assert_eq!(triplets(&fused), want);
    assert_eq!(triplets(&streamed), want);
}
