//! The [`Engine`] trait: the single interface through which instrumented
//! kernels report their dynamic instruction and memory trace.
//!
//! Kernels are written once, generic over `E: Engine`. Under
//! [`NullEngine`] every report is a no-op (native speed, used for
//! correctness tests and real benchmarks); under [`SimEngine`] each report
//! drives the cache [`Hierarchy`], the [`Gshare`] predictor and the
//! [`OooCore`] timing model.

use crate::addr::{AddressSpace, ArrayAddr};
use crate::branch::Gshare;
use crate::config::MachineConfig;
use crate::hierarchy::Hierarchy;
use crate::stats::{CoreStats, MemStats, PhaseStats};
use crate::timing::OooCore;

/// Sink for the dynamic trace of an instrumented kernel.
///
/// The `alu` method reports plain computation, `load`/`store` report cached
/// accesses, `nt_store` a non-temporal (cache-bypassing) store, and `branch`
/// a conditional branch with its outcome. `phase` marks the boundary between
/// named execution phases (e.g. `"binning"` → `"accumulate"`).
pub trait Engine {
    /// Allocates a named array in the engine's address space.
    fn alloc(&mut self, name: &str, bytes: u64) -> ArrayAddr;
    /// Reports a load of `bytes` bytes at `addr`.
    fn load(&mut self, addr: u64, bytes: u32);
    /// Reports a store of `bytes` bytes at `addr`.
    fn store(&mut self, addr: u64, bytes: u32);
    /// Reports a non-temporal store of `bytes` bytes at `addr`.
    fn nt_store(&mut self, addr: u64, bytes: u32);
    /// Reports `n` single-cycle ALU instructions.
    fn alu(&mut self, n: u32);
    /// Reports a conditional branch at `pc` with outcome `taken`.
    fn branch(&mut self, pc: u64, taken: bool);
    /// Marks the start of a new named phase.
    fn phase(&mut self, name: &'static str);
}

/// An [`Engine`] that discards the trace: kernels run at native speed.
#[derive(Debug, Default)]
pub struct NullEngine {
    space: AddressSpace,
}

impl NullEngine {
    /// Creates an engine that ignores every report.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Engine for NullEngine {
    fn alloc(&mut self, name: &str, bytes: u64) -> ArrayAddr {
        self.space.alloc(name, bytes)
    }
    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u32) {}
    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u32) {}
    #[inline]
    fn nt_store(&mut self, _addr: u64, _bytes: u32) {}
    #[inline]
    fn alu(&mut self, _n: u32) {}
    #[inline]
    fn branch(&mut self, _pc: u64, _taken: bool) {}
    #[inline]
    fn phase(&mut self, _name: &'static str) {}
}

/// Aggregate result of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Whole-run memory counters.
    pub mem: MemStats,
    /// Whole-run core counters.
    pub core: CoreStats,
    /// Per-phase counter deltas, in phase order.
    pub phases: Vec<PhaseStats>,
}

impl SimResult {
    /// Returns the phase with the given name, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total cycles of the run.
    pub fn cycles(&self) -> u64 {
        self.core.cycles
    }
}

/// An [`Engine`] that simulates every reported event.
#[derive(Debug)]
pub struct SimEngine {
    space: AddressSpace,
    hierarchy: Hierarchy,
    core: OooCore,
    predictor: Gshare,
    phases: Vec<PhaseStats>,
    phase_name: &'static str,
    phase_mem_base: MemStats,
    phase_core_base: CoreStats,
    /// Cycle at which the core's DRAM-channel share next becomes free.
    dram_free_cycle: u64,
    dram_line_occupancy: u64,
}

impl SimEngine {
    /// Creates a simulation engine for the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        SimEngine {
            space: AddressSpace::new(),
            hierarchy: Hierarchy::new(cfg),
            core: OooCore::new(&cfg),
            predictor: Gshare::default_size(),
            phases: Vec::new(),
            phase_name: "main",
            phase_mem_base: MemStats::default(),
            phase_core_base: CoreStats::default(),
            dram_free_cycle: 0,
            dram_line_occupancy: cfg.dram_line_occupancy,
        }
    }

    /// Charges `bytes` of DRAM-channel occupancy without blocking the core
    /// (fire-and-forget writes: NT stores, COBRA bin spills). Future demand
    /// misses queue behind this traffic.
    pub fn charge_dram_bandwidth(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.core.cycles();
        let start = self.dram_free_cycle.max(now);
        self.dram_free_cycle = start + bytes.div_ceil(crate::LINE_BYTES) * self.dram_line_occupancy;
    }

    /// Queue delay a demand access generating `bytes` of DRAM traffic sees,
    /// advancing the channel.
    fn dram_queue_delay(&mut self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let now = self.core.cycles();
        let start = self.dram_free_cycle.max(now);
        self.dram_free_cycle = start + bytes.div_ceil(crate::LINE_BYTES) * self.dram_line_occupancy;
        start - now
    }

    /// The synthetic address space (for allocations made outside a kernel).
    pub fn address_space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Mutable access to the cache hierarchy (used by the COBRA model to
    /// reserve ways and account bin traffic).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Read access to the cache hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutable access to the timing core (used by the COBRA model for
    /// `binupdate` dispatch and eviction-buffer stalls).
    pub fn core_mut(&mut self) -> &mut OooCore {
        &mut self.core
    }

    fn current_core_stats(&self) -> CoreStats {
        CoreStats {
            instructions: self.core.instructions(),
            branches: self.predictor.predictions(),
            branch_misses: self.predictor.misses(),
            cycles: self.core.cycles(),
            binning_stall_cycles: self.core.stall_cycles(),
        }
    }

    fn close_phase(&mut self) {
        let mem = self.hierarchy.stats() - self.phase_mem_base;
        let core = self.current_core_stats() - self.phase_core_base;
        if core.instructions > 0 || mem.l1d.accesses() > 0 || core.cycles > 0 {
            self.phases.push(PhaseStats {
                name: self.phase_name.to_owned(),
                mem,
                core,
            });
        }
        self.phase_mem_base = self.hierarchy.stats();
        self.phase_core_base = self.current_core_stats();
    }

    /// Finishes the run: drains the pipeline, closes the last phase and
    /// returns the accumulated [`SimResult`].
    pub fn finish(mut self) -> SimResult {
        self.core.drain();
        self.close_phase();
        SimResult {
            mem: self.hierarchy.stats(),
            core: self.current_core_stats(),
            phases: self.phases,
        }
    }
}

impl Engine for SimEngine {
    fn alloc(&mut self, name: &str, bytes: u64) -> ArrayAddr {
        self.space.alloc(name, bytes)
    }

    fn load(&mut self, addr: u64, _bytes: u32) {
        let before = self.hierarchy.dram_traffic_bytes();
        let out = self.hierarchy.load(addr);
        let delta = self.hierarchy.dram_traffic_bytes() - before;
        let latency = out.latency + self.dram_queue_delay(delta);
        if out.level == crate::stats::Level::Dram {
            self.core.load_dram(latency);
        } else {
            self.core.load(latency);
        }
    }

    fn store(&mut self, addr: u64, _bytes: u32) {
        let before = self.hierarchy.dram_traffic_bytes();
        self.hierarchy.store(addr);
        let delta = self.hierarchy.dram_traffic_bytes() - before;
        // Store misses consume channel bandwidth but retire into the store
        // buffer without stalling dispatch.
        let _ = self.dram_queue_delay(delta);
        self.core.store();
    }

    fn nt_store(&mut self, addr: u64, bytes: u32) {
        self.hierarchy.nt_store(addr, bytes as u64);
        self.charge_dram_bandwidth(bytes as u64);
        self.core.store();
    }

    fn alu(&mut self, n: u32) {
        for _ in 0..n {
            self.core.alu();
        }
    }

    fn branch(&mut self, pc: u64, taken: bool) {
        let correct = self.predictor.predict_and_update(pc, taken);
        self.core.branch(!correct);
    }

    fn phase(&mut self, name: &'static str) {
        // Drain so that in-flight latency is attributed to the phase that
        // incurred it.
        self.core.drain();
        self.close_phase();
        self.phase_name = name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Level;

    #[test]
    fn null_engine_is_inert() {
        let mut e = NullEngine::new();
        let a = e.alloc("x", 64);
        e.load(a.base(), 8);
        e.store(a.base(), 8);
        e.alu(5);
        e.branch(1, true);
        e.phase("p");
        // No observable state beyond allocation.
        assert_eq!(a.len_bytes(), 64);
    }

    #[test]
    fn sim_engine_counts_phases() {
        let mut e = SimEngine::new(MachineConfig::tiny());
        let a = e.alloc("x", 1 << 16);
        e.phase("first");
        for i in 0..100u64 {
            e.load(a.addr(8, i), 8);
        }
        e.phase("second");
        for i in 0..200u64 {
            e.store(a.addr(8, i), 8);
        }
        let r = e.finish();
        let first = r.phase("first").expect("first phase");
        let second = r.phase("second").expect("second phase");
        assert_eq!(first.mem.loads, 100);
        assert_eq!(second.mem.stores, 200);
        assert_eq!(r.mem.loads, 100);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn irregular_loads_cost_more_than_sequential() {
        let cfg = MachineConfig::tiny();
        let n: u64 = 20_000;

        let mut seq = SimEngine::new(cfg);
        let a = seq.alloc("a", n * 8);
        for i in 0..n {
            seq.load(a.addr(8, i), 8);
        }
        let seq_r = seq.finish();

        let mut irr = SimEngine::new(cfg);
        let b = irr.alloc("b", n * 8);
        let mut x = 7u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            irr.load(b.addr(8, x % n), 8);
        }
        let irr_r = irr.finish();

        assert!(
            irr_r.cycles() > 2 * seq_r.cycles(),
            "irregular {} vs sequential {}",
            irr_r.cycles(),
            seq_r.cycles()
        );
        // Sequential: 1 line miss per 8 loads; irregular: ~every load misses L1.
        assert!(irr_r.mem.l1d.miss_rate() > 4.0 * seq_r.mem.l1d.miss_rate());
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let a = e.alloc("hot", 4096);
        for rep in 0..20u64 {
            for i in 0..512u64 {
                e.load(a.addr(8, (i * 7 + rep) % 512), 8);
            }
        }
        let r = e.finish();
        assert!(r.mem.l1d.hit_rate() > 0.95, "rate {}", r.mem.l1d.hit_rate());
    }

    #[test]
    fn branch_misses_tracked() {
        let mut e = SimEngine::new(MachineConfig::tiny());
        let mut x = 3u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.branch(0x40, (x >> 40) & 1 == 1);
        }
        let r = e.finish();
        assert_eq!(r.core.branches, 5000);
        assert!(r.core.branch_misses > 1000);
    }

    #[test]
    fn first_access_misses_to_dram() {
        let mut e = SimEngine::new(MachineConfig::tiny());
        let a = e.alloc("x", 64);
        e.load(a.base(), 8);
        let r = e.finish();
        assert_eq!(r.mem.l1d.misses, 1);
        assert_eq!(r.mem.dram_read_bytes, crate::LINE_BYTES);
        let _ = Level::Dram; // silence unused import in cfg(test)
    }
}
