//! Radii (Ligra): graph-diameter estimation by 64-source concurrent BFS.
//!
//! Each vertex carries a 64-bit visitor mask (one bit per source). Per
//! round, every edge `u -> v` ORs `u`'s mask into `v`'s next mask; vertices
//! whose mask grew record the round as their eccentricity estimate. Only a
//! *subset* of vertices is active each round, making Radii representative
//! of frontier-driven kernels (vs Pagerank's all-vertices-every-round).
//! The OR update is commutative.

use crate::common::{pc, CsrAddrs};
use cobra_core::PbBackend;
use cobra_graph::Csr;
use cobra_sim::engine::Engine;

/// Tuple size: 16 B (`dst` key + 8 B visitor word, padded).
pub const TUPLE_BYTES: u32 = 16;

/// Number of concurrent BFS sources (one per mask bit).
pub const SOURCES: usize = 64;

/// Result of a Radii run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadiiResult {
    /// Per-vertex eccentricity estimate (round of last mask growth).
    pub radii: Vec<u32>,
    /// Rounds executed.
    pub rounds: u32,
}

impl RadiiResult {
    /// The estimated graph radius (max over vertices).
    pub fn estimate(&self) -> u32 {
        self.radii.iter().copied().max().unwrap_or(0)
    }
}

fn pick_sources(g: &Csr) -> Vec<u32> {
    (0..g.num_vertices() as u32)
        .filter(|&v| g.degree(v) > 0)
        .take(SOURCES)
        .collect()
}

/// Native reference.
pub fn reference(g: &Csr, max_rounds: u32) -> RadiiResult {
    let nv = g.num_vertices();
    let mut visitor = vec![0u64; nv];
    for (bit, v) in pick_sources(g).into_iter().enumerate() {
        visitor[v as usize] |= 1 << bit;
    }
    let mut radii = vec![0u32; nv];
    let mut round = 0;
    while round < max_rounds {
        round += 1;
        let mut next = visitor.clone();
        for u in 0..nv as u32 {
            let m = visitor[u as usize];
            if m == 0 {
                continue;
            }
            for &v in g.neighbors(u) {
                next[v as usize] |= m;
            }
        }
        let mut changed = false;
        for v in 0..nv {
            if next[v] != visitor[v] {
                radii[v] = round;
                changed = true;
            }
        }
        visitor = next;
        if !changed {
            break;
        }
    }
    RadiiResult {
        radii,
        rounds: round,
    }
}

/// Baseline: direct push of visitor masks (irregular `|=`).
pub fn baseline<E: Engine>(e: &mut E, g: &Csr, max_rounds: u32) -> RadiiResult {
    let nv = g.num_vertices();
    let addrs = CsrAddrs::alloc(e, g);
    let vis_addr = e.alloc("radii_visitor", nv.max(1) as u64 * 8);
    let next_addr = e.alloc("radii_next", nv.max(1) as u64 * 8);
    let radii_addr = e.alloc("radii_out", nv.max(1) as u64 * 4);

    let mut visitor = vec![0u64; nv];
    for (bit, v) in pick_sources(g).into_iter().enumerate() {
        visitor[v as usize] |= 1 << bit;
    }
    let mut radii = vec![0u32; nv];

    e.phase(cobra_core::exec::phases::MAIN);
    let mut round = 0;
    while round < max_rounds {
        round += 1;
        let mut next = visitor.clone();
        let nv32 = nv as u32;
        for u in 0..nv32 {
            e.load(addrs.offsets.addr(4, u as u64), 4);
            e.load(addrs.offsets.addr(4, u as u64 + 1), 4);
            e.load(vis_addr.addr(8, u as u64), 8);
            e.branch(pc::FILTER, visitor[u as usize] != 0);
            let m = visitor[u as usize];
            if m == 0 {
                continue;
            }
            let lo = g.offsets()[u as usize] as u64;
            let deg = g.degree(u);
            for (j, &v) in g.neighbors(u).iter().enumerate() {
                e.load(addrs.neighbors.addr(4, lo + j as u64), 4);
                e.alu(1);
                e.branch(pc::NEIGHBOR_LOOP, (j as u32) + 1 < deg);
                // next[v] |= m : irregular read-modify-write.
                e.load(next_addr.addr(8, v as u64), 8);
                e.alu(1);
                e.store(next_addr.addr(8, v as u64), 8);
                next[v as usize] |= m;
            }
        }
        // Streaming compare pass.
        let mut changed = false;
        for v in 0..nv {
            e.load(vis_addr.addr(8, v as u64), 8);
            e.load(next_addr.addr(8, v as u64), 8);
            let grew = next[v] != visitor[v];
            e.branch(pc::FILTER, grew);
            if grew {
                e.store(radii_addr.addr(4, v as u64), 4);
                radii[v] = round;
                changed = true;
            }
        }
        visitor = next;
        if !changed {
            break;
        }
    }
    RadiiResult {
        radii,
        rounds: round,
    }
}

/// PB execution: per round, Binning scatters `(dst, mask)` tuples for the
/// active frontier; Accumulate ORs them in.
pub fn pb<B: PbBackend<u64>>(b: &mut B, g: &Csr, max_rounds: u32) -> RadiiResult {
    let nv = g.num_vertices();
    let addrs = CsrAddrs::alloc(b.engine(), g);
    let vis_addr = b.engine().alloc("radii_visitor", nv.max(1) as u64 * 8);
    let next_addr = b.engine().alloc("radii_next", nv.max(1) as u64 * 8);
    let radii_addr = b.engine().alloc("radii_out", nv.max(1) as u64 * 4);

    let mut visitor = vec![0u64; nv];
    for (bit, v) in pick_sources(g).into_iter().enumerate() {
        visitor[v as usize] |= 1 << bit;
    }
    let mut radii = vec![0u32; nv];
    let shift = b.bin_shift();
    let nbins = b.num_bins();

    let mut round = 0;
    while round < max_rounds {
        round += 1;

        b.engine().phase(cobra_core::exec::phases::INIT);
        // Count tuples for this round's frontier.
        let mut counts = vec![0u64; nbins];
        {
            let e = b.engine();
            let nv32 = nv as u32;
            for u in 0..nv32 {
                e.load(vis_addr.addr(8, u as u64), 8);
                e.branch(pc::FILTER, visitor[u as usize] != 0);
                if visitor[u as usize] == 0 {
                    continue;
                }
                let lo = g.offsets()[u as usize] as u64;
                for (j, &v) in g.neighbors(u).iter().enumerate() {
                    e.load(addrs.neighbors.addr(4, lo + j as u64), 4);
                    e.alu(1);
                    counts[(v >> shift) as usize] += 1;
                }
            }
        }
        b.presize(&counts);

        b.engine().phase(cobra_core::exec::phases::BINNING);
        let nv32 = nv as u32;
        for u in 0..nv32 {
            b.engine().load(addrs.offsets.addr(4, u as u64), 4);
            b.engine().load(addrs.offsets.addr(4, u as u64 + 1), 4);
            b.engine().load(vis_addr.addr(8, u as u64), 8);
            b.engine().branch(pc::FILTER, visitor[u as usize] != 0);
            let m = visitor[u as usize];
            if m == 0 {
                continue;
            }
            let lo = g.offsets()[u as usize] as u64;
            let deg = g.degree(u);
            for (j, &v) in g.neighbors(u).iter().enumerate() {
                b.engine().load(addrs.neighbors.addr(4, lo + j as u64), 4);
                b.engine().alu(1);
                b.engine().branch(pc::NEIGHBOR_LOOP, (j as u32) + 1 < deg);
                b.insert(v, m);
            }
        }
        let storage = b.flush_and_take();

        b.engine().phase(cobra_core::exec::phases::ACCUMULATE);
        let mut next = visitor.clone();
        {
            let e = b.engine();
            let mut iter = storage.iter().peekable();
            while let Some((addr, key, &m)) = iter.next() {
                e.load(addr, TUPLE_BYTES);
                e.load(next_addr.addr(8, key as u64), 8);
                e.alu(1);
                e.store(next_addr.addr(8, key as u64), 8);
                e.branch(pc::STREAM_LOOP, iter.peek().is_some());
                next[key as usize] |= m;
            }
            let mut changed = false;
            for v in 0..nv {
                e.load(vis_addr.addr(8, v as u64), 8);
                e.load(next_addr.addr(8, v as u64), 8);
                let grew = next[v] != visitor[v];
                e.branch(pc::FILTER, grew);
                if grew {
                    e.store(radii_addr.addr(4, v as u64), 4);
                    radii[v] = round;
                    changed = true;
                }
            }
            visitor = next;
            if !changed {
                break;
            }
        }
    }
    RadiiResult {
        radii,
        rounds: round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_graph::gen;
    use cobra_sim::engine::NullEngine;
    use cobra_sim::MachineConfig;

    fn input() -> Csr {
        Csr::from_edgelist(&gen::uniform_random(2000, 16_000, 11))
    }

    #[test]
    fn baseline_matches_reference() {
        let g = input();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &g, 10), reference(&g, 10));
    }

    #[test]
    fn pb_matches_reference() {
        let g = input();
        let mut b = SwPb::<_, u64>::new(
            NullEngine::new(),
            g.num_vertices() as u32,
            16,
            TUPLE_BYTES,
            g.num_edges() as u64 * 4,
        );
        assert_eq!(pb(&mut b, &g, 10), reference(&g, 10));
    }

    #[test]
    fn cobra_matches_reference() {
        let g = input();
        let mut m = CobraMachine::<u64>::with_defaults(
            MachineConfig::hpca22(),
            g.num_vertices() as u32,
            TUPLE_BYTES,
            g.num_edges() as u64 * 4,
        );
        assert_eq!(pb(&mut m, &g, 10), reference(&g, 10));
    }

    #[test]
    fn mesh_has_larger_radius_than_random_graph() {
        let mesh = Csr::from_edgelist(&gen::road_mesh(40, 3));
        let rnd = input();
        let rm = reference(&mesh, 100);
        let rr = reference(&rnd, 100);
        assert!(
            rm.estimate() > rr.estimate(),
            "mesh {} vs random {}",
            rm.estimate(),
            rr.estimate()
        );
    }

    #[test]
    fn isolated_graph_converges_immediately() {
        let g = Csr::from_edgelist(&cobra_graph::EdgeList::new(10, vec![]));
        let r = reference(&g, 5);
        assert_eq!(r.estimate(), 0);
    }
}
