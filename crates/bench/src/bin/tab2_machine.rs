//! Table II: the simulated machine parameters.

#![forbid(unsafe_code)]

use cobra_bench::Table;
use cobra_sim::MachineConfig;

fn main() {
    let m = MachineConfig::hpca22();
    let mut t = Table::new(
        "Table II: Simulation parameters (per core)",
        &["component", "value"],
    );
    t.row(vec![
        "Core".into(),
        format!(
            "OoO, 2.66GHz, {}-wide issue, {}-entry ROB, {}-entry LQ, {}-entry SQ, {} MSHRs",
            m.issue_width, m.rob, m.load_queue, m.store_queue, m.mshrs
        ),
    ]);
    t.row(vec![
        "L1D".into(),
        format!(
            "{}KB, {}-way, {:?}, load-to-use {} cyc",
            m.l1.size_bytes / 1024,
            m.l1.ways,
            m.l1.replacement,
            m.l1.latency
        ),
    ]);
    t.row(vec![
        "L2".into(),
        format!(
            "{}KB, {}-way, {:?}, load-to-use {} cyc, stream prefetcher (degree {})",
            m.l2.size_bytes / 1024,
            m.l2.ways,
            m.l2.replacement,
            m.l2.latency,
            m.prefetch.degree
        ),
    ]);
    t.row(vec![
        "LLC (local NUCA slice)".into(),
        format!(
            "{}MB/core, {}-way, {:?}, load-to-use {} cyc",
            m.llc.size_bytes / (1024 * 1024),
            m.llc.ways,
            m.llc.replacement,
            m.llc.latency
        ),
    ]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "{} cyc (~80ns) latency, {} cyc per 64B line (per-core channel share)",
            m.dram_latency, m.dram_line_occupancy
        ),
    ]);
    t.row(vec![
        "Note".into(),
        "single representative core; LLC = per-core 2MB NUCA bank (DESIGN.md §2)".into(),
    ]);
    t.print();
    t.write_csv("tab2_machine");
}
