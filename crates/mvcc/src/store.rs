//! The multi-epoch retention window.
//!
//! An [`EpochStore`] holds the last K published [`EpochSnapshot`]s (and
//! optionally only those younger than T). Because snapshots share
//! copy-on-write segments, retaining K epochs costs the *unique* segment
//! versions only — an epoch that touched 3 of 1024 segments adds 3
//! segments of bytes to the window, not a full copy of the state.
//!
//! Garbage collection is `Arc`-drop semantics, nothing more: evicting an
//! epoch drops that snapshot's segment handles, and a segment allocation
//! is freed exactly when no *retained* epoch (and no in-flight reader or
//! cache entry) still names it. A segment shared with a newer retained
//! epoch survives its original epoch's eviction by construction — there
//! is no mark phase that could get this wrong.

use cobra_bins::SegmentSet;
use cobra_stream::EpochSnapshot;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Retention policy for an [`EpochStore`]: keep the last `max_epochs`
/// snapshots, and (optionally) drop retained snapshots older than
/// `max_age` as new epochs are admitted. The latest snapshot is always
/// kept regardless of age.
#[derive(Debug, Clone, Copy)]
pub struct RetentionConfig {
    max_epochs: usize,
    max_age: Option<Duration>,
}

impl RetentionConfig {
    /// Keep only the latest epoch (the pre-MVCC behavior).
    pub fn new() -> Self {
        RetentionConfig {
            max_epochs: 1,
            max_age: None,
        }
    }

    /// Sets the window size in epochs (must be ≥ 1).
    pub fn max_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1, "retention window needs at least one epoch");
        self.max_epochs = epochs;
        self
    }

    /// Sets an age bound: snapshots admitted more than `age` ago are
    /// evicted when the next epoch is admitted (the latest always stays).
    pub fn max_age(mut self, age: Duration) -> Self {
        self.max_age = Some(age);
        self
    }

    /// The configured window size in epochs.
    pub fn epochs(&self) -> usize {
        self.max_epochs
    }

    /// The configured age bound, if any.
    pub fn age(&self) -> Option<Duration> {
        self.max_age
    }
}

impl Default for RetentionConfig {
    fn default() -> Self {
        RetentionConfig::new()
    }
}

/// A request named an epoch outside the retained window: either evicted
/// (older than the window) or never published (newer than the latest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochEvicted {
    /// The epoch the request named.
    pub requested: u64,
    /// Oldest epoch still retained.
    pub oldest: u64,
    /// Newest (latest published) retained epoch.
    pub newest: u64,
}

impl std::fmt::Display for EpochEvicted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} outside retained window [{}, {}]",
            self.requested, self.oldest, self.newest
        )
    }
}

impl std::error::Error for EpochEvicted {}

struct Retained<A> {
    snap: Arc<EpochSnapshot<A>>,
    admitted_at: Instant,
}

/// Thread-safe window of the last K epoch snapshots.
///
/// The window starts empty; the owner seeds it with the initial (or
/// recovered) snapshot before readers arrive, and the stream layer's
/// publish hook [`admit`](EpochStore::admit)s every epoch after that.
pub struct EpochStore<A> {
    cfg: RetentionConfig,
    window: Mutex<VecDeque<Retained<A>>>,
}

impl<A> EpochStore<A> {
    /// An empty store with the given policy.
    pub fn new(cfg: RetentionConfig) -> Self {
        EpochStore {
            cfg,
            window: Mutex::new(VecDeque::with_capacity(cfg.max_epochs + 1)),
        }
    }

    /// The retention policy.
    pub fn config(&self) -> RetentionConfig {
        self.cfg
    }

    /// Admits a freshly published snapshot and applies the retention
    /// policy, returning the number of snapshots evicted. Re-admitting
    /// the current latest epoch is a no-op; an epoch older than the
    /// latest is ignored (publishes are monotonic — this only guards
    /// against a racing double-seed).
    pub fn admit(&self, snap: Arc<EpochSnapshot<A>>) -> usize {
        let mut window = self.window.lock().expect("mvcc window lock poisoned");
        if let Some(back) = window.back() {
            if snap.epoch() <= back.snap.epoch() {
                return 0;
            }
        }
        window.push_back(Retained {
            snap,
            admitted_at: Instant::now(),
        });
        let mut evicted = 0;
        while window.len() > self.cfg.max_epochs {
            window.pop_front();
            evicted += 1;
        }
        if let Some(age) = self.cfg.max_age {
            while window.len() > 1
                && window
                    .front()
                    .is_some_and(|r| r.admitted_at.elapsed() > age)
            {
                window.pop_front();
                evicted += 1;
            }
        }
        evicted
    }

    /// The retained snapshot of `epoch`, where `0` means "the latest".
    /// Any other epoch must lie inside the retained window, else a typed
    /// [`EpochEvicted`] reports the window bounds.
    pub fn get(&self, epoch: u64) -> Result<Arc<EpochSnapshot<A>>, EpochEvicted> {
        let window = self.window.lock().expect("mvcc window lock poisoned");
        let (Some(front), Some(back)) = (window.front(), window.back()) else {
            return Err(EpochEvicted {
                requested: epoch,
                oldest: 0,
                newest: 0,
            });
        };
        if epoch == 0 {
            return Ok(Arc::clone(&back.snap));
        }
        let bounds = EpochEvicted {
            requested: epoch,
            oldest: front.snap.epoch(),
            newest: back.snap.epoch(),
        };
        if epoch < bounds.oldest || epoch > bounds.newest {
            return Err(bounds);
        }
        window
            .iter()
            .find(|r| r.snap.epoch() == epoch)
            .map(|r| Arc::clone(&r.snap))
            .ok_or(bounds)
    }

    /// The latest retained snapshot, or `None` before the store is
    /// seeded.
    pub fn latest(&self) -> Option<Arc<EpochSnapshot<A>>> {
        let window = self.window.lock().expect("mvcc window lock poisoned");
        window.back().map(|r| Arc::clone(&r.snap))
    }

    /// `(oldest, newest)` retained epochs, or `None` when empty.
    pub fn bounds(&self) -> Option<(u64, u64)> {
        let window = self.window.lock().expect("mvcc window lock poisoned");
        match (window.front(), window.back()) {
            (Some(f), Some(b)) => Some((f.snap.epoch(), b.snap.epoch())),
            _ => None,
        }
    }

    /// Number of snapshots currently retained.
    pub fn retained_epochs(&self) -> u64 {
        let window = self.window.lock().expect("mvcc window lock poisoned");
        window.len() as u64
    }

    /// Bytes held by the window's *unique* segment allocations —
    /// deduplicated by `Arc` pointer identity, so segments shared across
    /// epochs count once. This is the number that drops when eviction
    /// frees the last reference to an old segment version.
    pub fn retained_bytes(&self) -> u64 {
        let window = self.window.lock().expect("mvcc window lock poisoned");
        let mut set = SegmentSet::new();
        for r in window.iter() {
            for i in 0..r.snap.num_segments() {
                set.insert(r.snap.segment(i));
            }
        }
        set.unique_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    fn snap(epoch: u64, segments: Vec<Arc<Vec<u64>>>) -> Arc<EpochSnapshot<u64>> {
        Arc::new(EpochSnapshot::from_segments(epoch, 4, segments))
    }

    fn fresh(fill: u64) -> Arc<Vec<u64>> {
        Arc::new(vec![fill; 4])
    }

    #[test]
    fn window_of_one_keeps_only_latest() {
        let store = EpochStore::new(RetentionConfig::new());
        store.admit(snap(0, vec![fresh(0), fresh(0)]));
        store.admit(snap(1, vec![fresh(1), fresh(1)]));
        assert_eq!(store.bounds(), Some((1, 1)));
        assert_eq!(store.get(0).map(|s| s.epoch()), Ok(1));
        assert_eq!(
            store.get(1).map(|s| s.epoch()),
            Ok(1),
            "the latest epoch is addressable by number too"
        );
        let err = store.get(2).expect_err("future epoch");
        assert_eq!(
            err,
            EpochEvicted {
                requested: 2,
                oldest: 1,
                newest: 1
            }
        );
    }

    #[test]
    fn eviction_respects_count_and_reports_typed_error() {
        let store = EpochStore::new(RetentionConfig::new().max_epochs(2));
        for e in 0..4 {
            store.admit(snap(e, vec![fresh(e), fresh(e)]));
        }
        assert_eq!(store.bounds(), Some((2, 3)));
        assert_eq!(store.retained_epochs(), 2);
        let err = store.get(1).expect_err("epoch 1 evicted");
        assert_eq!(err.requested, 1);
        assert_eq!((err.oldest, err.newest), (2, 3));
        assert_eq!(store.get(2).map(|s| s.epoch()), Ok(2));
    }

    #[test]
    fn age_policy_evicts_old_epochs_but_keeps_latest() {
        let store = EpochStore::new(RetentionConfig::new().max_epochs(8).max_age(Duration::ZERO));
        store.admit(snap(1, vec![fresh(1)]));
        std::thread::sleep(Duration::from_millis(2));
        store.admit(snap(2, vec![fresh(2)]));
        // Epoch 1 aged out at the admission of epoch 2; the latest stays
        // no matter how stale.
        assert_eq!(store.bounds(), Some((2, 2)));
    }

    #[test]
    fn gc_frees_unshared_segments_and_never_shared_ones() {
        // Epoch 1 rewrites both segments; epoch 2 rewrites only segment
        // 0, sharing epoch 1's segment 1. Evicting epoch 1 must free its
        // segment-0 version (nobody else names it) and must NOT free its
        // segment-1 version (epoch 2 still shares it).
        let store = EpochStore::new(RetentionConfig::new().max_epochs(2));
        let e1_seg0 = fresh(10);
        let e1_seg1 = fresh(11);
        let weak_e1_seg0: Weak<Vec<u64>> = Arc::downgrade(&e1_seg0);
        let shared_seg1 = Arc::clone(&e1_seg1);

        store.admit(snap(1, vec![e1_seg0, e1_seg1]));
        store.admit(snap(2, vec![fresh(20), Arc::clone(&shared_seg1)]));
        assert!(
            weak_e1_seg0.upgrade().is_some(),
            "window of 2 still retains epoch 1"
        );

        store.admit(snap(3, vec![fresh(30), Arc::clone(&shared_seg1)]));
        assert!(
            weak_e1_seg0.upgrade().is_none(),
            "epoch 1's unshared segment must be freed on eviction"
        );
        // Our handle + epoch 2 + epoch 3 still name the shared segment.
        assert_eq!(cobra_bins::segment_refs(&shared_seg1), 3);

        store.admit(snap(4, vec![fresh(40), fresh(41)]));
        store.admit(snap(5, vec![fresh(50), fresh(51)]));
        // Epochs 2 and 3 evicted; only our local handle remains.
        assert_eq!(cobra_bins::segment_refs(&shared_seg1), 1);
    }

    #[test]
    fn retained_bytes_counts_unique_segments_and_drops_after_eviction() {
        let store = EpochStore::new(RetentionConfig::new().max_epochs(2));
        let shared = fresh(7);
        store.admit(snap(1, vec![fresh(1), fresh(1)]));
        store.admit(snap(2, vec![fresh(2), Arc::clone(&shared)]));
        // 3 unique segments of 4×8 bytes: epoch 1's pair is fully
        // distinct, epoch 2 shares nothing with it.
        assert_eq!(store.retained_bytes(), 4 * 4 * 8);

        // Epoch 3 shares epoch 2's second segment: admitting it evicts
        // epoch 1 (2 unique segments gone) and adds 1 → bytes drop.
        let before = store.retained_bytes();
        store.admit(snap(3, vec![fresh(3), Arc::clone(&shared)]));
        let after = store.retained_bytes();
        assert!(
            after < before,
            "eviction must free bytes: {before} -> {after}"
        );
        assert_eq!(after, 3 * 4 * 8);
    }

    #[test]
    fn empty_store_reports_evicted_and_no_latest() {
        let store: EpochStore<u64> = EpochStore::new(RetentionConfig::new());
        assert!(store.latest().is_none());
        assert!(store.bounds().is_none());
        assert!(store.get(0).is_err());
    }

    #[test]
    fn stale_admit_is_ignored() {
        let store = EpochStore::new(RetentionConfig::new().max_epochs(4));
        store.admit(snap(3, vec![fresh(3)]));
        store.admit(snap(3, vec![fresh(3)]));
        store.admit(snap(2, vec![fresh(2)]));
        assert_eq!(store.retained_epochs(), 1);
        assert_eq!(store.bounds(), Some((3, 3)));
    }
}
