//! Synthetic address space for instrumented kernels.
//!
//! Instrumented kernels do not touch real memory through the simulator; they
//! compute with ordinary Rust data and *report* the addresses they would have
//! touched. [`AddressSpace`] is a bump allocator that hands out
//! non-overlapping, page-aligned base addresses for named arrays so those
//! reports are consistent and collision-free.

use std::fmt;

/// Alignment of every allocation, in bytes (one 4 KiB page).
pub const PAGE_BYTES: u64 = 4096;

/// Base address of the first allocation. Non-zero so that address `0` can be
/// used as a sentinel and so low PC-like values never alias data.
const BASE: u64 = 0x1_0000_0000;

/// The base address of a named array in the synthetic [`AddressSpace`].
///
/// ```
/// use cobra_sim::AddressSpace;
/// let mut space = AddressSpace::new();
/// let a = space.alloc("vtx_data", 8 * 100);
/// assert_eq!(a.addr(8, 3), a.base() + 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayAddr {
    base: u64,
    len_bytes: u64,
}

impl ArrayAddr {
    /// The first byte of the array.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The allocation size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Address of element `index` for elements of `elem_bytes` bytes.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the element lies outside the allocation.
    #[inline]
    pub fn addr(&self, elem_bytes: u64, index: u64) -> u64 {
        debug_assert!(
            (index + 1) * elem_bytes <= self.len_bytes,
            "index {index} (elem {elem_bytes}B) out of bounds for {}B array",
            self.len_bytes
        );
        self.base + index * elem_bytes
    }
}

impl fmt::Display for ArrayAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}; {}B]", self.base, self.len_bytes)
    }
}

/// A bump allocator over a synthetic 64-bit address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: u64,
    allocs: Vec<(String, ArrayAddr)>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self {
            next: BASE,
            allocs: Vec::new(),
        }
    }

    /// Allocates `bytes` bytes for the array called `name`, page-aligned.
    ///
    /// Zero-sized allocations are permitted and return a unique, valid base.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> ArrayAddr {
        let base = self.next;
        let span = bytes.max(1); // keep bases unique even for empty arrays
        self.next += span.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let a = ArrayAddr {
            base,
            len_bytes: bytes,
        };
        self.allocs.push((name.to_owned(), a));
        a
    }

    /// Total bytes reserved so far (including alignment padding).
    pub fn reserved_bytes(&self) -> u64 {
        self.next - BASE
    }

    /// Iterates over `(name, allocation)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ArrayAddr)> {
        self.allocs.iter().map(|(n, a)| (n.as_str(), *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 5000);
        let c = s.alloc("c", 0);
        assert_eq!(a.base() % PAGE_BYTES, 0);
        assert_eq!(b.base() % PAGE_BYTES, 0);
        assert!(a.base() + 100 <= b.base());
        assert!(b.base() + 5000 <= c.base());
        assert_ne!(b.base(), c.base());
    }

    #[test]
    fn element_addressing() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8 * 16);
        assert_eq!(a.addr(8, 0), a.base());
        assert_eq!(a.addr(8, 15), a.base() + 120);
        assert_eq!(a.addr(4, 31), a.base() + 124);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_index_panics_in_debug() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8);
        let _ = a.addr(8, 1);
    }

    #[test]
    fn reserved_bytes_counts_padding() {
        let mut s = AddressSpace::new();
        s.alloc("a", 1);
        assert_eq!(s.reserved_bytes(), PAGE_BYTES);
        s.alloc("b", PAGE_BYTES + 1);
        assert_eq!(s.reserved_bytes(), 3 * PAGE_BYTES);
    }

    #[test]
    fn iter_names() {
        let mut s = AddressSpace::new();
        s.alloc("x", 1);
        s.alloc("y", 1);
        let names: Vec<_> = s.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
