//! Integer Sort: counting sort of `u32` keys (the paper's PB/COBRA versions
//! optimize a parallel counting sort; the baseline comparison sort is
//! `slice::sort_unstable` in the native benchmarks).
//!
//! Counting sort performs two irregular passes over the key domain —
//! histogram increments and scatter-by-cursor — and the scatter is
//! *non-commutative* in record-sorting form (each record must land in a
//! distinct slot whose position depends on update order).

use crate::common::pc;
use cobra_core::{count_bin_tuples, PbBackend};
use cobra_graph::prefix::exclusive_sum;
use cobra_sim::engine::Engine;

/// Tuple size: 4 B (the key is the payload).
pub const TUPLE_BYTES: u32 = 4;

/// Native reference.
pub fn reference(keys: &[u32]) -> Vec<u32> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    out
}

/// Baseline: counting sort with full-domain histogram + scatter.
pub fn baseline<E: Engine>(e: &mut E, keys: &[u32], max_key: u32) -> Vec<u32> {
    let n = keys.len();
    let keys_addr = e.alloc("is_keys", n.max(1) as u64 * 4);
    let counts_addr = e.alloc("is_counts", max_key.max(1) as u64 * 4);
    let out_addr = e.alloc("is_out", n.max(1) as u64 * 4);

    let mut counts = vec![0u32; max_key as usize];
    e.phase(cobra_core::exec::phases::MAIN);
    // Histogram pass: irregular increments.
    for (i, &k) in keys.iter().enumerate() {
        e.load(keys_addr.addr(4, i as u64), 4);
        e.load(counts_addr.addr(4, k as u64), 4);
        e.alu(2);
        e.store(counts_addr.addr(4, k as u64), 4);
        e.branch(pc::STREAM_LOOP, i + 1 < n);
        counts[k as usize] += 1;
    }
    // Prefix sum: streaming.
    let offsets = exclusive_sum(&counts);
    for k in 0..max_key as u64 {
        e.load(counts_addr.addr(4, k), 4);
        e.alu(1);
        e.store(counts_addr.addr(4, k), 4);
    }
    // Scatter pass: two irregular accesses per key.
    let mut cursor = offsets;
    let mut out = vec![0u32; n];
    for (i, &k) in keys.iter().enumerate() {
        e.load(keys_addr.addr(4, i as u64), 4);
        e.load(counts_addr.addr(4, k as u64), 4);
        let slot = cursor[k as usize];
        e.store(out_addr.addr(4, slot as u64), 4);
        e.alu(1);
        e.store(counts_addr.addr(4, k as u64), 4);
        e.branch(pc::STREAM_LOOP, i + 1 < n);
        out[slot as usize] = k;
        cursor[k as usize] += 1;
    }
    out
}

/// PB execution: Binning partitions keys by range; Accumulate counting-sorts
/// each bin into its contiguous output segment — every irregular structure
/// (local histogram, output segment) is bin-sized and cache-resident.
pub fn pb<B: PbBackend<()>>(b: &mut B, keys: &[u32], _max_key: u32) -> Vec<u32> {
    let n = keys.len();
    let keys_addr = b.engine().alloc("is_keys", n.max(1) as u64 * 4);
    let out_addr = b.engine().alloc("is_out", n.max(1) as u64 * 4);

    b.engine().phase(cobra_core::exec::phases::INIT);
    let shift = b.bin_shift();
    let nbins = b.num_bins();
    let counts = count_bin_tuples(b.engine(), n, shift, nbins, |e, i| {
        e.load(keys_addr.addr(4, i as u64), 4);
        keys[i]
    });
    b.presize(&counts);

    b.engine().phase(cobra_core::exec::phases::BINNING);
    for (i, &k) in keys.iter().enumerate() {
        b.engine().load(keys_addr.addr(4, i as u64), 4);
        b.engine().alu(1);
        b.engine().branch(pc::STREAM_LOOP, i + 1 < n);
        b.insert(k, ());
    }
    let storage = b.flush_and_take();

    b.engine().phase(cobra_core::exec::phases::ACCUMULATE);
    let bin_range = 1usize << storage.bin_shift();
    let local_addr = b.engine().alloc("is_local_counts", bin_range as u64 * 4);
    let e = b.engine();
    let mut out = Vec::with_capacity(n);
    let mut tuple_addr_cursor = storage.base_addr();
    for bin_id in 0..storage.num_bins() {
        let base_key = (bin_id << storage.bin_shift()) as u32;
        let mut local = vec![0u32; bin_range];
        // Local histogram over this bin's key range (cache-resident).
        let bin_keys = storage.keys(bin_id);
        for (j, &k) in bin_keys.iter().enumerate() {
            e.load(tuple_addr_cursor, TUPLE_BYTES); // sequential tuple reads
            tuple_addr_cursor += TUPLE_BYTES as u64;
            e.load(local_addr.addr(4, (k - base_key) as u64), 4);
            e.alu(2);
            e.store(local_addr.addr(4, (k - base_key) as u64), 4);
            e.branch(pc::STREAM_LOOP, j + 1 < bin_keys.len());
            local[(k - base_key) as usize] += 1;
        }
        // Emit the bin's keys in order (sequential output writes).
        for (off, &c) in local.iter().enumerate() {
            e.load(local_addr.addr(4, off as u64), 4);
            e.branch(pc::FILTER, c > 0);
            for _ in 0..c {
                e.store(out_addr.addr(4, out.len() as u64), 4);
                e.alu(1);
                out.push(base_key + off as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_graph::gen;
    use cobra_sim::engine::{NullEngine, SimEngine};
    use cobra_sim::MachineConfig;

    fn input() -> (Vec<u32>, u32) {
        (gen::random_keys(20_000, 1 << 16, 5), 1 << 16)
    }

    #[test]
    fn baseline_sorts() {
        let (keys, max) = input();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &keys, max), reference(&keys));
    }

    #[test]
    fn pb_software_sorts() {
        let (keys, max) = input();
        let mut b = SwPb::<_, ()>::new(NullEngine::new(), max, 64, TUPLE_BYTES, keys.len() as u64);
        assert_eq!(pb(&mut b, &keys, max), reference(&keys));
    }

    #[test]
    fn pb_cobra_sorts() {
        let (keys, max) = input();
        let mut m = CobraMachine::<()>::with_defaults(
            MachineConfig::hpca22(),
            max,
            TUPLE_BYTES,
            keys.len() as u64,
        );
        assert_eq!(pb(&mut m, &keys, max), reference(&keys));
    }

    #[test]
    fn pb_accumulate_beats_baseline_scatter_locality() {
        let keys = gen::random_keys(60_000, 1 << 20, 9);
        let mut e = SimEngine::new(MachineConfig::hpca22());
        let _ = baseline(&mut e, &keys, 1 << 20);
        let base = e.finish();

        let mut b = SwPb::<_, ()>::new(
            SimEngine::new(MachineConfig::hpca22()),
            1 << 20,
            1024,
            TUPLE_BYTES,
            keys.len() as u64,
        );
        let _ = pb(&mut b, &keys, 1 << 20);
        let pbr = b.into_engine().finish();
        let acc = pbr.phase("accumulate").expect("accumulate");
        assert!(
            acc.mem.l1d.miss_rate() < base.mem.l1d.miss_rate(),
            "accumulate {} vs baseline {}",
            acc.mem.l1d.miss_rate(),
            base.mem.l1d.miss_rate()
        );
    }

    #[test]
    fn degenerate_inputs() {
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &[], 16), Vec::<u32>::new());
        assert_eq!(baseline(&mut e, &[3, 3, 3], 16), vec![3, 3, 3]);
        let mut b = SwPb::<_, ()>::new(NullEngine::new(), 16, 2, TUPLE_BYTES, 3);
        assert_eq!(pb(&mut b, &[3, 3, 3], 16), vec![3, 3, 3]);
    }
}
