//! Epoch accumulation: the streaming Accumulate phase.
//!
//! Shard workers double-buffer their bins: sealing an epoch swaps the
//! active bins out (`Binner::take_bins`) and ships them here, so binning
//! of epoch `e+1` proceeds while this accumulator replays epoch `e` —
//! the same overlap COBRA gets from its eviction buffers decoupling the
//! core from the binning engines.
//!
//! Deltas from different shards cover disjoint key ranges, but snapshots
//! must still be *epoch-aligned*: the accumulator defers any shard's
//! epoch-`e` delta until every shard's epoch-`e-1` delta has been applied,
//! then applies the aligned wave and publishes an immutable
//! [`EpochSnapshot`]. Within a shard's delta, tuples replay in per-shard
//! arrival order — the non-commutative correctness condition (paper,
//! Section III).

use crate::channel::Receiver;
use crate::reducer::Reducer;
use cobra_pb::Bins;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, epoch-aligned view of the accumulated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSnapshot<A> {
    epoch: u64,
    values: Vec<A>,
}

impl<A> EpochSnapshot<A> {
    pub(crate) fn new(epoch: u64, values: Vec<A>) -> Self {
        EpochSnapshot { epoch, values }
    }

    /// The epoch this snapshot reflects (0 = the empty initial state; the
    /// final drain publishes one extra epoch past the last seal).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of keys.
    pub fn num_keys(&self) -> u32 {
        self.values.len() as u32
    }

    /// The accumulated value of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn get(&self, key: u32) -> &A {
        &self.values[key as usize]
    }

    /// The accumulated value of `key`, or `None` when `key` is out of
    /// range. Use this (not [`get`](Self::get)) for keys that come from
    /// untrusted input: a malformed key must produce an error response,
    /// not a panic in whichever worker handled the request.
    pub fn try_get(&self, key: u32) -> Option<&A> {
        self.values.get(key as usize)
    }

    /// All accumulated values, indexed by key.
    pub fn values(&self) -> &[A] {
        &self.values
    }
}

/// One sealed epoch's worth of updates from one shard, keyed by
/// shard-local key.
pub(crate) enum EpochDelta<R: Reducer> {
    /// Bins replayed tuple-by-tuple in arrival order (general case).
    Ordered(Bins<R::Value>),
    /// Pre-reduced `(local_key, partial)` pairs (commutative fast path).
    Reduced(Vec<(u32, R::Acc)>),
}

/// Shard-to-accumulator protocol.
pub(crate) enum AccMsg<R: Reducer> {
    /// A sealed epoch's delta.
    Sealed {
        shard: usize,
        epoch: u64,
        delta: EpochDelta<R>,
    },
    /// The shard's final drain delta; the shard has exited.
    Done { shard: usize, delta: EpochDelta<R> },
}

/// The single accumulator thread's state. Owns the authoritative value
/// array; publishes `Arc<EpochSnapshot>`s.
pub(crate) struct Accumulator<R: Reducer> {
    reducer: Arc<R>,
    /// Key base of each shard (local key + base = global key).
    bases: Vec<u32>,
    state: Vec<R::Acc>,
    /// Per-shard queue of sealed epochs not yet merged into an aligned wave.
    pending: Vec<VecDeque<(u64, EpochDelta<R>)>>,
    final_deltas: Vec<Option<EpochDelta<R>>>,
    applied_epoch: u64,
    published: Arc<Mutex<Arc<EpochSnapshot<R::Acc>>>>,
    epochs_published: Arc<AtomicU64>,
}

impl<R: Reducer> Accumulator<R> {
    pub(crate) fn new(
        reducer: Arc<R>,
        bases: Vec<u32>,
        num_keys: u32,
        published: Arc<Mutex<Arc<EpochSnapshot<R::Acc>>>>,
        epochs_published: Arc<AtomicU64>,
    ) -> Self {
        let shards = bases.len();
        Accumulator {
            state: vec![reducer.identity(); num_keys as usize],
            reducer,
            pending: (0..shards).map(|_| VecDeque::new()).collect(),
            final_deltas: (0..shards).map(|_| None).collect(),
            bases,
            applied_epoch: 0,
            published,
            epochs_published,
        }
    }

    /// Consumes shard messages until every shard reports `Done`, then
    /// applies the remaining aligned epochs and the drain deltas and
    /// publishes the final snapshot.
    pub(crate) fn run(mut self, rx: Receiver<AccMsg<R>>) {
        let mut done = 0usize;
        while done < self.bases.len() {
            // A vanished sender side (all workers gone) terminates too.
            let Some(msg) = rx.recv() else { break };
            match msg {
                AccMsg::Sealed {
                    shard,
                    epoch,
                    delta,
                } => {
                    self.pending[shard].push_back((epoch, delta));
                    self.advance();
                }
                AccMsg::Done { shard, delta } => {
                    self.final_deltas[shard] = Some(delta);
                    done += 1;
                }
            }
        }
        self.advance();
        for shard in 0..self.bases.len() {
            // Any unaligned stragglers (a shard died early) still apply in
            // per-shard epoch order before its drain delta.
            while let Some((_, delta)) = self.pending[shard].pop_front() {
                self.apply(shard, delta);
            }
            if let Some(delta) = self.final_deltas[shard].take() {
                self.apply(shard, delta);
            }
        }
        self.publish(self.applied_epoch + 1);
    }

    /// Applies complete epoch waves in order, publishing one snapshot per
    /// aligned epoch.
    fn advance(&mut self) {
        loop {
            let next = self.applied_epoch + 1;
            let ready = self
                .pending
                .iter()
                .all(|q| q.front().is_some_and(|&(e, _)| e == next));
            if !ready {
                return;
            }
            for shard in 0..self.pending.len() {
                let (_, delta) = self.pending[shard].pop_front().expect("checked front");
                self.apply(shard, delta);
            }
            self.applied_epoch = next;
            self.publish(next);
        }
    }

    fn apply(&mut self, shard: usize, delta: EpochDelta<R>) {
        let base = self.bases[shard];
        let reducer = &self.reducer;
        let state = &mut self.state;
        match delta {
            EpochDelta::Ordered(bins) => bins.accumulate(|local_key, value| {
                reducer.apply(&mut state[(base + local_key) as usize], value);
            }),
            EpochDelta::Reduced(partials) => {
                for (local_key, partial) in partials {
                    reducer.merge(&mut state[(base + local_key) as usize], partial);
                }
            }
        }
    }

    fn publish(&self, epoch: u64) {
        let snap = Arc::new(EpochSnapshot::new(epoch, self.state.clone()));
        *self.published.lock().expect("snapshot lock poisoned") = snap;
        // ordering: Relaxed — audited: the snapshot itself is published by
        // the mutexed Arc swap above (observers that see the new count and
        // then read the snapshot do so through that lock, which provides
        // the happens-before edge); this counter is progress telemetry.
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
    }
}
