//! Streaming drivers: the preprocessing/analytics kernels rephrased as
//! continuous ingestion over [`cobra_stream`]'s sharded pipeline.
//!
//! The batch kernels in this crate consume a fully materialized edge list.
//! These drivers instead feed the same irregular updates through a
//! long-lived [`IngestPipeline`] — edges arrive from any number of
//! producer threads, epochs seal mid-stream, and the result is read off
//! the final epoch snapshot. They are the native-execution counterparts of
//! the instrumented kernels, used by the streaming integration tests and
//! the `stream_throughput` bench.

use cobra_graph::{Csr, EdgeList};
use cobra_stream::{Count, IngestPipeline, StreamConfig, StreamStats, Sum};

/// Streaming Degree-Count: every edge increments `degrees[dst]`.
///
/// Splits the edge list across `producers` threads, each with its own
/// [`IngestHandle`](cobra_stream::IngestHandle), and drains the pipeline.
/// The result equals [`degree_count::reference`](crate::degree_count::reference)
/// exactly — counting commutes, so producer interleaving is immaterial.
pub fn degree_count(el: &EdgeList, producers: usize, cfg: StreamConfig) -> (Vec<u32>, StreamStats) {
    assert!(producers > 0, "need at least one producer");
    let nv = el.num_vertices().max(1);
    let pipeline = IngestPipeline::new(nv, Count, cfg);
    let edges = el.edges();
    std::thread::scope(|s| {
        for chunk in edges.chunks(edges.len().div_ceil(producers).max(1)) {
            let mut handle = pipeline.handle();
            s.spawn(move || {
                for e in chunk {
                    handle.send(e.dst, ()).expect("pipeline alive");
                }
            });
        }
    });
    let (snapshot, stats) = pipeline.shutdown();
    (snapshot.to_vec(), stats)
}

/// Streaming Pagerank contribution pass: every edge `(u, v)` streams the
/// delta `rank[u] / degree[u]` to key `v`; the snapshot holds the summed
/// contributions, finalized as `(1-d)/n + d * sum` — one push iteration of
/// [`pagerank::reference`](crate::pagerank::reference) computed by
/// ingestion instead of traversal.
///
/// Contributions are summed in `f64` (addition order varies with producer
/// interleaving; the wider accumulator keeps the result stable enough to
/// compare against the batch `f32` reference).
pub fn pagerank_delta(g: &Csr, producers: usize, cfg: StreamConfig) -> (Vec<f32>, StreamStats) {
    assert!(producers > 0, "need at least one producer");
    let nv = g.num_vertices().max(1) as u32;
    let pipeline = IngestPipeline::new(nv, Sum, cfg);
    let init = 1.0 / nv as f64;
    std::thread::scope(|s| {
        for lo in (0..nv).step_by((nv as usize).div_ceil(producers).max(1)) {
            let hi = (lo + (nv as usize).div_ceil(producers).max(1) as u32).min(nv);
            let mut handle = pipeline.handle();
            s.spawn(move || {
                for u in lo..hi {
                    let deg = g.degree(u);
                    if deg == 0 {
                        continue;
                    }
                    let contrib = init / deg as f64;
                    for &v in g.neighbors(u) {
                        handle.send(v, contrib).expect("pipeline alive");
                    }
                }
            });
        }
    });
    let (snapshot, stats) = pipeline.shutdown();
    let base = (1.0 - crate::pagerank::DAMPING as f64) / nv as f64;
    let d = crate::pagerank::DAMPING as f64;
    let ranks = snapshot.iter().map(|&s| (base + d * s) as f32).collect();
    (ranks, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::gen;

    #[test]
    fn streaming_degree_count_equals_reference() {
        let el = gen::rmat(12, 8, 1);
        let want = crate::degree_count::reference(&el);
        for producers in [1, 4] {
            let (got, stats) = degree_count(
                &el,
                producers,
                StreamConfig::new().shards(4).epoch_tuples(5_000),
            );
            assert_eq!(got, want, "{producers} producers");
            assert_eq!(stats.tuples_sent, el.num_edges() as u64);
            assert!(stats.epochs_sealed >= 5);
        }
    }

    #[test]
    fn streaming_pagerank_matches_batch_iteration() {
        let g = Csr::from_edgelist(&gen::rmat(11, 8, 2));
        let want = crate::pagerank::reference(&g);
        let (got, _) = pagerank_delta(&g, 4, StreamConfig::new().shards(4));
        assert_eq!(got.len(), want.len());
        for (v, (&a, &b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "vertex {v}: streamed {a} vs batch {b}"
            );
        }
    }

    #[test]
    fn empty_graph_streams_cleanly() {
        let el = EdgeList::new(5, Vec::new());
        let (got, stats) = degree_count(&el, 2, StreamConfig::default());
        assert_eq!(got, vec![0; 5]);
        assert_eq!(stats.tuples_sent, 0);
    }
}
