//! Bounded exhaustive exploration of the cluster's cross-node
//! seal/commit protocol (`cobra-cluster`'s epoch barrier).
//!
//! The model is the coordinator-free alignment rule as the router and the
//! nodes actually implement it: one router seals epoch `E` on every node,
//! each node *later* durably commits `E` (its epoch sink runs
//! asynchronously relative to the seal reply — exactly the gap between
//! `SEAL`'s `Sealed` response and `WAIT_EPOCH`'s `EpochCommitted`), and
//! the router may assemble the cluster snapshot for `E` only after its
//! `WAIT_EPOCH(E)` barrier completed on *every* node.
//!
//! Every interleaving of node seal-processing and commit steps against
//! router progress is explored by DFS with memoization. The core
//! invariant, asserted at each publish:
//!
//! > **The cluster snapshot for epoch `E` never publishes before every
//! > node has reported `EpochCommit(E)`.**
//!
//! The self-test seeds the natural protocol bug — a quorum-of-one
//! barrier that proceeds after the first node's commit — and the
//! explorer must find a schedule where the second node's commit is still
//! pending at publish time.

use std::collections::HashSet;

/// One bounded cluster scenario to exhaust.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    /// Display name.
    pub name: &'static str,
    /// Number of backend nodes (the tests use 2, per the cluster e2e).
    pub nodes: usize,
    /// Epoch rounds the router drives (seal → barrier → publish).
    pub rounds: u8,
    /// Mutation for the self-test: the barrier waits only for node 0's
    /// commit (a quorum of one) instead of every node's.
    pub buggy_quorum_of_one: bool,
}

/// One node's protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NodeSt {
    /// A `SEAL` request is queued and not yet processed.
    seal_requested: bool,
    /// Epochs sealed (the `Sealed { epoch }` reply value).
    sealed: u8,
    /// Epochs durably committed (what `WAIT_EPOCH` reports). Always lags
    /// or equals `sealed`: commit is the node's asynchronous second step.
    committed: u8,
}

/// Router phases, in protocol order for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RPhase {
    /// Fan the round's `SEAL` out to node `i` (requests are sent
    /// immediately; nodes process them whenever they are scheduled).
    SendSeal(u8),
    /// Await node `i`'s `Sealed` reply and check epoch alignment.
    AwaitSealed(u8),
    /// `WAIT_EPOCH` barrier on node `i`.
    Barrier(u8),
    /// All barriers passed: publish the cluster snapshot for the round.
    Publish,
    /// All rounds done.
    Done,
}

/// One explicit protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CSt {
    nodes: Vec<NodeSt>,
    router: RPhase,
    /// Epoch the router is currently driving (1-based).
    round: u8,
    /// Highest cluster epoch published so far.
    published: u8,
}

/// An invariant violation found in some schedule.
#[derive(Debug, Clone)]
pub struct ClusterViolation {
    /// Scenario that produced it.
    pub scenario: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ClusterViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.scenario, self.message)
    }
}

/// Exploration statistics for one scenario.
#[derive(Debug, Clone, Copy)]
pub struct ClusterStats {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal (all-rounds-published) states reached.
    pub terminals: usize,
}

struct Explorer<'a> {
    sc: &'a ClusterScenario,
}

impl<'a> Explorer<'a> {
    fn violation(&self, message: String) -> ClusterViolation {
        ClusterViolation {
            scenario: self.sc.name,
            message,
        }
    }

    fn initial(&self) -> CSt {
        CSt {
            nodes: vec![
                NodeSt {
                    seal_requested: false,
                    sealed: 0,
                    committed: 0,
                };
                self.sc.nodes
            ],
            router: RPhase::SendSeal(0),
            round: 1,
            published: 0,
        }
    }

    /// Router progress for one step; `None` when it is blocked waiting on
    /// a node (a reply or the commit barrier).
    fn step_router(&self, st: &CSt) -> Result<Option<CSt>, ClusterViolation> {
        let n = self.sc.nodes as u8;
        match st.router {
            RPhase::SendSeal(i) => {
                let mut next = st.clone();
                next.nodes[i as usize].seal_requested = true;
                next.router = if i + 1 < n {
                    RPhase::SendSeal(i + 1)
                } else {
                    RPhase::AwaitSealed(0)
                };
                Ok(Some(next))
            }
            RPhase::AwaitSealed(i) => {
                let node = &st.nodes[i as usize];
                if node.seal_requested {
                    return Ok(None); // reply not in yet
                }
                // Single-sealer alignment: every node must report the
                // round's epoch.
                if node.sealed != st.round {
                    return Err(self.violation(format!(
                        "node {i} sealed epoch {} in round {} — single-sealer \
                         alignment broken",
                        node.sealed, st.round
                    )));
                }
                let mut next = st.clone();
                next.router = if i + 1 < n {
                    RPhase::AwaitSealed(i + 1)
                } else {
                    RPhase::Barrier(0)
                };
                Ok(Some(next))
            }
            RPhase::Barrier(i) => {
                if st.nodes[i as usize].committed < st.round {
                    return Ok(None); // WAIT_EPOCH still blocking
                }
                let mut next = st.clone();
                // The seeded bug: treat node 0's commit as a quorum and
                // skip the remaining barriers.
                let barrier_done = self.sc.buggy_quorum_of_one || i + 1 >= n;
                next.router = if barrier_done {
                    RPhase::Publish
                } else {
                    RPhase::Barrier(i + 1)
                };
                Ok(Some(next))
            }
            RPhase::Publish => {
                // THE invariant: publish only after every node's commit.
                for (i, node) in st.nodes.iter().enumerate() {
                    if node.committed < st.round {
                        return Err(self.violation(format!(
                            "cluster snapshot for epoch {} published while node {i} \
                             had only committed epoch {}",
                            st.round, node.committed
                        )));
                    }
                }
                let mut next = st.clone();
                next.published = st.round;
                if st.round < self.sc.rounds {
                    next.round += 1;
                    next.router = RPhase::SendSeal(0);
                } else {
                    next.router = RPhase::Done;
                }
                Ok(Some(next))
            }
            RPhase::Done => Ok(None),
        }
    }

    /// Node `i`'s possible steps: process a queued `SEAL`, and/or commit
    /// one sealed-but-uncommitted epoch (the asynchronous epoch sink).
    /// Both may be enabled at once — the DFS branches over the choice.
    fn step_node(&self, st: &CSt, i: usize) -> Result<Vec<CSt>, ClusterViolation> {
        let node = &st.nodes[i];
        if node.committed > node.sealed {
            return Err(self.violation(format!(
                "node {i} committed epoch {} beyond sealed epoch {} — commit \
                 must follow seal",
                node.committed, node.sealed
            )));
        }
        let mut out = Vec::new();
        if node.seal_requested {
            let mut next = st.clone();
            next.nodes[i].seal_requested = false;
            next.nodes[i].sealed += 1;
            out.push(next);
        }
        if node.committed < node.sealed {
            let mut next = st.clone();
            next.nodes[i].committed += 1;
            out.push(next);
        }
        Ok(out)
    }

    fn run(&self) -> Result<ClusterStats, ClusterViolation> {
        let mut visited: HashSet<CSt> = HashSet::new();
        let mut stack = vec![self.initial()];
        let mut terminals = 0usize;
        while let Some(st) = stack.pop() {
            if !visited.insert(st.clone()) {
                continue;
            }
            let mut successors = Vec::new();
            if let Some(next) = self.step_router(&st)? {
                successors.push(next);
            }
            for i in 0..self.sc.nodes {
                successors.extend(self.step_node(&st, i)?);
            }
            if successors.is_empty() {
                if st.router == RPhase::Done {
                    terminals += 1;
                    if st.published != self.sc.rounds {
                        return Err(self.violation(format!(
                            "terminated having published epoch {} of {}",
                            st.published, self.sc.rounds
                        )));
                    }
                    continue;
                }
                return Err(self.violation(format!(
                    "deadlock in round {} with router at {:?}",
                    st.round, st.router
                )));
            }
            for next in successors {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
        }
        Ok(ClusterStats {
            states: visited.len(),
            terminals,
        })
    }
}

/// Explores one cluster scenario exhaustively.
pub fn explore_cluster(sc: &ClusterScenario) -> Result<ClusterStats, ClusterViolation> {
    Explorer { sc }.run()
}

/// The standard cluster scenario suite: the e2e configuration (two
/// nodes) over one and several rounds, plus a wider fan-out.
pub fn standard_cluster_scenarios() -> Vec<ClusterScenario> {
    vec![
        ClusterScenario {
            name: "two_nodes_one_round",
            nodes: 2,
            rounds: 1,
            buggy_quorum_of_one: false,
        },
        ClusterScenario {
            name: "two_nodes_three_rounds",
            nodes: 2,
            rounds: 3,
            buggy_quorum_of_one: false,
        },
        ClusterScenario {
            name: "four_nodes_two_rounds",
            nodes: 4,
            rounds: 2,
            buggy_quorum_of_one: false,
        },
    ]
}

/// The seeded quorum-of-one mutation the self-test must catch.
pub fn quorum_of_one_mutation() -> ClusterScenario {
    ClusterScenario {
        name: "quorum_of_one_mutation",
        nodes: 2,
        rounds: 1,
        buggy_quorum_of_one: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_cluster_scenarios_exhaust_cleanly() {
        for sc in standard_cluster_scenarios() {
            let stats = explore_cluster(&sc).unwrap_or_else(|v| panic!("{v}"));
            assert!(stats.states > 10, "{}: suspiciously small space", sc.name);
            assert!(stats.terminals > 0, "{}: no terminal state", sc.name);
        }
    }

    #[test]
    fn quorum_of_one_publishes_before_full_commit_and_is_caught() {
        // The mutated barrier proceeds on node 0's commit alone; some
        // schedule leaves node 1 uncommitted at publish, and the
        // explorer must find it.
        let err = explore_cluster(&quorum_of_one_mutation())
            .expect_err("quorum-of-one must violate the publish invariant");
        assert!(err.message.contains("published while node"), "got: {err}");
    }

    #[test]
    fn commit_beyond_seal_would_be_caught() {
        // Sanity-check the checker itself: a node state where commit ran
        // ahead of seal must violate.
        let sc = ClusterScenario {
            name: "self_check",
            nodes: 1,
            rounds: 1,
            buggy_quorum_of_one: false,
        };
        let ex = Explorer { sc: &sc };
        let mut st = ex.initial();
        st.nodes[0].committed = 1;
        let err = ex
            .step_node(&st, 0)
            .expect_err("commit beyond seal must violate");
        assert!(err.message.contains("beyond sealed"), "got: {err}");
    }
}
