//! The `cobra-check` binary: race detection, commutativity oracles,
//! schedule exploration and invariant linting under one entry point.
//!
//! ```text
//! cobra-check races     # vector-clock race + invariant check, all kernels
//! cobra-check oracle    # commutativity oracles (models, reducers, replays)
//! cobra-check explore   # bounded exhaustive schedule exploration
//! cobra-check lint      # source-level invariant lints
//! cobra-check selftest  # the seeded racy fixture must be caught
//! cobra-check all       # everything above; non-zero exit on any failure
//! ```

use cobra_check::{cluster, explore, fixtures, lint, oracle, race};
use cobra_kernels::ALL_KERNELS;

/// Permuted orders tried per oracle subject.
const ORACLE_PERMS: usize = 6;

fn run_races() -> bool {
    println!("== race detection (FastTrack over instrumented runs) ==");
    let mut ok = true;
    for &k in ALL_KERNELS.iter() {
        let cap = fixtures::kernel_parallel_capture(k);
        let report = race::check_trace(&cap.events);
        println!(
            "  {:\u{2007}<18} {:>7} events  {:>2} threads  {:>6} bin writes  {:>6} acc writes  {}",
            format!("{k:?}"),
            report.events,
            report.threads,
            report.bin_writes,
            report.acc_writes,
            if report.is_clean() { "clean" } else { "RACY" },
        );
        for f in &report.findings {
            println!("    {f}");
        }
        ok &= report.is_clean();
    }
    let core = race::check_trace(&fixtures::core_exec_capture());
    println!(
        "  {:\u{2007}<18} {:>7} events  {:>2} threads  {:>6} bin writes  (core exec path)  {}",
        "SwPb-exec",
        core.events,
        core.threads,
        core.bin_writes,
        if core.is_clean() { "clean" } else { "RACY" },
    );
    for f in &core.findings {
        println!("    {f}");
    }
    ok && core.is_clean()
}

fn run_oracle() -> bool {
    println!("== commutativity oracle (permuted replays) ==");
    let mut ok = true;
    println!("  scatter models:");
    for r in oracle::check_all_scatter_models(ORACLE_PERMS) {
        println!("    {r}");
        ok &= r.agrees();
    }
    println!("  streaming reducers:");
    for r in oracle::check_reducers(ORACLE_PERMS) {
        println!("    {r}");
        ok &= r.agrees();
    }
    println!("  wal-suffix replays (recovery replay order):");
    for r in oracle::check_wal_replays(ORACLE_PERMS) {
        println!("    {r}");
        ok &= r.agrees();
    }
    println!("  whole-kernel replays (shuffled bins end to end):");
    for r in oracle::check_kernel_replays(ORACLE_PERMS) {
        println!("    {r}");
        ok &= r.agrees();
    }
    ok
}

fn run_explore() -> bool {
    println!("== schedule exploration (stream channel/seal/epoch protocol) ==");
    let mut ok = true;
    for sc in explore::standard_scenarios() {
        match explore::explore(&sc) {
            Ok(stats) => println!(
                "  {:32} {:>7} states, {:>4} terminal schedules, all invariants hold",
                sc.name, stats.states, stats.terminals
            ),
            Err(v) => {
                println!("  {:32} VIOLATION: {v}", sc.name);
                ok = false;
            }
        }
    }
    println!("== schedule exploration (cluster cross-node seal/commit barrier) ==");
    for sc in cluster::standard_cluster_scenarios() {
        match cluster::explore_cluster(&sc) {
            Ok(stats) => println!(
                "  {:32} {:>7} states, {:>4} terminal schedules, publish-after-all-commit holds",
                sc.name, stats.states, stats.terminals
            ),
            Err(v) => {
                println!("  {:32} VIOLATION: {v}", sc.name);
                ok = false;
            }
        }
    }
    ok
}

fn run_lint() -> bool {
    println!("== invariant lints ==");
    let root = match lint::find_workspace_root() {
        Ok(r) => r,
        Err(e) => {
            println!("  cannot locate workspace root: {e}");
            return false;
        }
    };
    match lint::run_lints(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("  clean (4 rules over pb/core/stream/sim/serve/wal sources)");
            true
        }
        Ok(violations) => {
            for v in &violations {
                println!("  {v}");
            }
            println!("  {} violation(s)", violations.len());
            false
        }
        Err(e) => {
            println!("  lint failed to read sources: {e}");
            false
        }
    }
}

fn run_selftest() -> bool {
    println!("== self-test (seeded defects must be caught) ==");
    let racy = race::check_trace(&fixtures::racy_degree_count_events());
    let racy_caught = racy
        .findings
        .iter()
        .any(|f| matches!(f, race::Finding::WriteRace { .. }));
    println!(
        "  seeded cross-bin write race:    {}",
        if racy_caught {
            "detected"
        } else {
            "MISSED — detector is broken"
        }
    );
    let clean = race::check_trace(&fixtures::clean_degree_count_events());
    println!(
        "  clean control run:              {}",
        if clean.is_clean() {
            "clean"
        } else {
            "FALSE POSITIVE"
        }
    );
    let buggy = explore::Scenario {
        name: "lost_wakeup_mutation",
        cap_data: 1,
        cap_acc: 1,
        producers: vec![
            vec![explore::POp::Send(1), explore::POp::Send(1)],
            vec![explore::POp::Send(1)],
        ],
        worker_exit_after: Some(0),
        buggy_drop_notify_one: true,
        strict_totals: false,
    };
    let deadlock_found = explore::explore(&buggy).is_err();
    println!(
        "  lost-wakeup mutation:           {}",
        if deadlock_found {
            "deadlock exposed"
        } else {
            "MISSED — explorer is broken"
        }
    );
    let quorum_caught = cluster::explore_cluster(&cluster::quorum_of_one_mutation()).is_err();
    println!(
        "  quorum-of-one barrier mutation: {}",
        if quorum_caught {
            "early publish exposed"
        } else {
            "MISSED — cluster explorer is broken"
        }
    );
    racy_caught && clean.is_clean() && deadlock_found && quorum_caught
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let ok = match mode.as_str() {
        "races" => run_races(),
        "oracle" => run_oracle(),
        "explore" => run_explore(),
        "lint" => run_lint(),
        "selftest" => run_selftest(),
        "all" => {
            let mut ok = true;
            // Run every analysis even after a failure: one report, all news.
            ok &= run_races();
            ok &= run_oracle();
            ok &= run_explore();
            ok &= run_lint();
            ok &= run_selftest();
            ok
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            eprintln!("usage: cobra-check [races|oracle|explore|lint|selftest|all]");
            std::process::exit(2);
        }
    };
    if ok {
        println!("cobra-check: PASS");
    } else {
        println!("cobra-check: FAIL");
        std::process::exit(1);
    }
}
