//! Neighbor-Populate: the second kernel of Edgelist→CSR conversion
//! (Algorithm 1 of the paper) — the paper's flagship *non-commutative*
//! irregular-update kernel.
//!
//! Given the Offsets Array (a prefix sum of degrees), each edge claims the
//! next free slot of its source's neighborhood: `neighs[offsets[src]++] =
//! dst`. The order of updates to `offsets[src]` decides where each neighbor
//! lands, so updates cannot be coalesced — but any per-source order is
//! valid (unordered parallelism), which is exactly why PB applies
//! (Algorithm 2).

use crate::common::{stream_edges, EdgeListAddrs};
use cobra_core::{count_bin_tuples, PbBackend};
use cobra_graph::prefix::exclusive_sum;
use cobra_graph::{Csr, EdgeList};
use cobra_sim::engine::Engine;

/// Tuple size: 8 B (`src` key + `dst` payload).
pub const TUPLE_BYTES: u32 = 8;

/// Native reference (the canonical serial Edgelist→CSR).
pub fn reference(el: &EdgeList) -> Csr {
    Csr::from_edgelist(el)
}

/// Baseline execution: Algorithm 1. Streams edges; `offsets[src]` is read,
/// used to address the neighbor store, and incremented — two irregular
/// accesses per edge.
pub fn baseline<E: Engine>(e: &mut E, el: &EdgeList) -> Csr {
    let nv = el.num_vertices() as usize;
    let ne = el.num_edges();
    let addrs = EdgeListAddrs::alloc(e, el);
    let offsets_addr = e.alloc("offsets_work", (nv as u64 + 1) * 4);
    let neighs_addr = e.alloc("neighbors_out", ne.max(1) as u64 * 4);

    let offsets = exclusive_sum(&el.degrees());
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; ne];

    e.phase(cobra_core::exec::phases::MAIN);
    stream_edges(e, el, addrs, |e, edge| {
        // offsetVal <- offsets[src]; neighs[offsetVal] <- dst; offsets[src]++
        e.load(offsets_addr.addr(4, edge.src as u64), 4);
        let slot = cursor[edge.src as usize];
        e.store(neighs_addr.addr(4, slot as u64), 4);
        e.alu(1);
        e.store(offsets_addr.addr(4, edge.src as u64), 4);
        neighbors[slot as usize] = edge.dst;
        cursor[edge.src as usize] += 1;
    });
    Csr::from_raw(offsets, neighbors)
}

/// PB execution (Algorithm 2) over any binning backend. Tuples are
/// `(src, dst)`; the Accumulate phase replays each bin's tuples in order,
/// so per-source neighbor order equals arrival order — the non-commutative
/// correctness condition.
pub fn pb<B: PbBackend<u32>>(b: &mut B, el: &EdgeList) -> Csr {
    let nv = el.num_vertices() as usize;
    let ne = el.num_edges();
    let addrs = EdgeListAddrs::alloc(b.engine(), el);
    let offsets_addr = b.engine().alloc("offsets_work", (nv as u64 + 1) * 4);
    let neighs_addr = b.engine().alloc("neighbors_out", ne.max(1) as u64 * 4);

    let offsets = exclusive_sum(&el.degrees());
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; ne];

    b.engine().phase(cobra_core::exec::phases::INIT);
    let shift = b.bin_shift();
    let nbins = b.num_bins();
    let counts = {
        let edges = el.edges();
        count_bin_tuples(b.engine(), edges.len(), shift, nbins, |e, i| {
            e.load(addrs.edges.addr(8, i as u64), 8);
            edges[i].src
        })
    };
    b.presize(&counts);

    b.engine().phase(cobra_core::exec::phases::BINNING);
    for (i, &edge) in el.edges().iter().enumerate() {
        b.engine().load(addrs.edges.addr(8, i as u64), 8);
        b.engine().alu(1);
        b.engine()
            .branch(crate::common::pc::STREAM_LOOP, i + 1 < ne);
        b.insert(edge.src, edge.dst);
    }
    let storage = b.flush_and_take();

    b.engine().phase(cobra_core::exec::phases::ACCUMULATE);
    let e = b.engine();
    let mut iter = storage.iter().peekable();
    while let Some((addr, src, &dst)) = iter.next() {
        e.load(addr, TUPLE_BYTES);
        e.load(offsets_addr.addr(4, src as u64), 4);
        let slot = cursor[src as usize];
        e.store(neighs_addr.addr(4, slot as u64), 4);
        e.alu(1);
        e.store(offsets_addr.addr(4, src as u64), 4);
        e.branch(crate::common::pc::STREAM_LOOP, iter.peek().is_some());
        neighbors[slot as usize] = dst;
        cursor[src as usize] += 1;
    }
    Csr::from_raw(offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_graph::gen;
    use cobra_sim::engine::{NullEngine, SimEngine};
    use cobra_sim::MachineConfig;

    fn input() -> EdgeList {
        gen::rmat(10, 8, 23)
    }

    #[test]
    fn baseline_matches_reference_exactly() {
        let el = input();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &el), reference(&el));
    }

    #[test]
    fn pb_software_matches_reference_exactly() {
        // Bit-identical CSR: the non-commutative order property.
        let el = input();
        let mut b = SwPb::<_, u32>::new(
            NullEngine::new(),
            el.num_vertices(),
            64,
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        assert_eq!(pb(&mut b, &el), reference(&el));
    }

    #[test]
    fn pb_cobra_matches_reference_exactly() {
        let el = input();
        let mut m = CobraMachine::<u32>::with_defaults(
            MachineConfig::hpca22(),
            el.num_vertices(),
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        assert_eq!(pb(&mut m, &el), reference(&el));
    }

    #[test]
    fn pb_improves_accumulate_locality_over_baseline_updates() {
        // On a large uniform graph, the baseline's offsets/neighbors
        // accesses are cache-hostile; PB's accumulate touches one small key
        // range at a time.
        let el = gen::uniform_random(1 << 16, 1 << 18, 3);

        let mut e = SimEngine::new(MachineConfig::hpca22());
        let _ = baseline(&mut e, &el);
        let base = e.finish();

        let mut b = SwPb::<_, u32>::new(
            SimEngine::new(MachineConfig::hpca22()),
            el.num_vertices(),
            1024,
            TUPLE_BYTES,
            el.num_edges() as u64,
        );
        let _ = pb(&mut b, &el);
        let pbr = b.into_engine().finish();

        let base_main = base.phase("main").expect("main");
        let pb_acc = pbr.phase("accumulate").expect("accumulate");
        assert!(
            pb_acc.mem.l1d.miss_rate() < base_main.mem.l1d.miss_rate(),
            "accumulate {} vs baseline {}",
            pb_acc.mem.l1d.miss_rate(),
            base_main.mem.l1d.miss_rate()
        );
    }

    #[test]
    fn empty_graph_handled() {
        let el = EdgeList::new(4, vec![]);
        let mut e = NullEngine::new();
        let g = baseline(&mut e, &el);
        assert_eq!(g.num_edges(), 0);
    }
}
