//! Durable-mode integration tests: graceful-restart roundtrips, replay
//! without checkpoints, crash-image recovery (a copy of the data dir
//! taken mid-run, which is exactly what a kill -9 leaves behind), and
//! corrupted-log fault injection.

use cobra_stream::{Count, DurableConfig, IngestPipeline, StreamConfig, SyncPolicy};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cobra-stream-durable-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create dst");
    for entry in fs::read_dir(src).expect("read src") {
        let entry = entry.expect("entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

fn stream_cfg() -> StreamConfig {
    StreamConfig::new().shards(4).batch_tuples(8)
}

const KEYS: u32 = 1 << 10;

/// Ingests `epochs` epochs of `per_epoch` tuples (key = i % KEYS) and
/// seals each one. Returns the expected per-key counts.
fn ingest_epochs(p: &IngestPipeline<Count>, epochs: u64, per_epoch: u32) -> Vec<u32> {
    let mut h = p.handle();
    let mut expect = vec![0u32; KEYS as usize];
    for e in 0..epochs {
        for i in 0..per_epoch {
            let k = (e as u32 * 7 + i * 13) % KEYS;
            h.send(k, ()).expect("send");
            expect[k as usize] += 1;
        }
        h.seal_epoch().expect("seal");
    }
    expect
}

fn wait_published(p: &IngestPipeline<Count>, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while p.published_epoch() < epoch {
        assert!(Instant::now() < deadline, "epoch {epoch} never published");
        std::thread::yield_now();
    }
}

#[test]
fn graceful_restart_roundtrips_state_via_checkpoint() {
    let dir = temp_dir("graceful");
    let durable = DurableConfig::new(&dir).sync(SyncPolicy::Never);
    let (p, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    assert_eq!(report.committed_epoch, 0);
    assert_eq!(report.replayed_records, 0);
    let expect = ingest_epochs(&p, 3, 500);
    let (snap, stats) = p.shutdown();
    assert_eq!(snap.to_vec(), expect);
    let drained_epoch = snap.epoch();
    assert!(stats.wal_bytes_appended > 0, "updates were logged");
    assert!(stats.wal_segments > 0);

    // Restart: the drain checkpoint covers everything, so nothing replays.
    let (p2, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("recover");
    assert_eq!(report.committed_epoch, drained_epoch);
    assert_eq!(report.replayed_tuples, 0, "checkpoint made replay empty");
    assert_eq!(p2.published_epoch(), drained_epoch);
    assert_eq!(p2.snapshot().to_vec(), expect);

    // And the pipeline still works: new epochs land on top.
    let expect2 = ingest_epochs(&p2, 2, 200);
    let (snap2, stats2) = p2.shutdown();
    assert!(snap2.epoch() > drained_epoch, "epoch numbering continues");
    let combined: Vec<u32> = expect.iter().zip(&expect2).map(|(a, b)| a + b).collect();
    assert_eq!(snap2.to_vec(), combined);
    assert_eq!(stats2.wal_replayed_records, 0);

    // A third run replays nothing either and sees the combined state.
    let (p3, _) = IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("recover 2");
    assert_eq!(p3.snapshot().to_vec(), combined);
    p3.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_without_checkpoints_replays_the_whole_wal() {
    let dir = temp_dir("replay");
    let durable = DurableConfig::new(&dir)
        .sync(SyncPolicy::Never)
        .checkpoint_every(0);
    let (p, _) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    let expect = ingest_epochs(&p, 4, 300);
    let (snap, _) = p.shutdown();
    let drained_epoch = snap.epoch();

    let (p2, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("recover");
    assert_eq!(report.checkpoint_epoch, 0, "no checkpoints were written");
    assert_eq!(report.committed_epoch, drained_epoch);
    assert_eq!(report.replayed_tuples, 4 * 300, "every tuple replayed");
    assert!(
        report.replayed_records > report.replayed_tuples,
        "markers too"
    );
    let (snap2, stats2) = p2.shutdown();
    assert_eq!(snap2.to_vec(), expect);
    assert!(stats2.wal_replayed_records > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_image_keeps_committed_epochs_and_drops_the_tail() {
    let dir = temp_dir("crash");
    let durable = DurableConfig::new(&dir)
        .sync(SyncPolicy::Never)
        .checkpoint_every(2);
    let (p, _) = IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("fresh");
    let expect = ingest_epochs(&p, 3, 400);
    wait_published(&p, 3);

    // Epoch 4 is in flight — sent and flushed to the shard FIFOs but never
    // sealed — when the "crash" happens: copying the data dir captures the
    // same on-disk image an abrupt kill would leave.
    let mut h = p.handle();
    for i in 0..250u32 {
        h.send((i * 3) % KEYS, ()).expect("send");
    }
    h.flush().expect("flush");
    let image = temp_dir("crash-image");
    copy_dir(&dir, &image);
    drop(h);
    p.shutdown();

    let recovered = DurableConfig::new(&image).sync(SyncPolicy::Never);
    let (p2, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), recovered).expect("recover");
    // Zero committed-epoch loss...
    assert_eq!(report.committed_epoch, 3);
    assert_eq!(p2.published_epoch(), 3);
    assert_eq!(p2.snapshot().to_vec(), expect);
    // ...and the unsealed epoch-4 tail did not leak in.
    let (snap2, _) = p2.shutdown();
    assert_eq!(snap2.to_vec(), expect);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&image);
}

/// Largest shard log file, for corruption targets.
fn a_shard_segment(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for s in 0..64 {
        let sdir = dir.join(format!("shard-{s:03}"));
        let Ok(entries) = fs::read_dir(&sdir) else {
            continue;
        };
        for e in entries.flatten() {
            let len = e.metadata().map(|m| m.len()).unwrap_or(0);
            if best.as_ref().is_none_or(|(l, _)| len > *l) {
                best = Some((len, e.path()));
            }
        }
    }
    best.expect("no shard segments found").1
}

#[test]
fn truncated_shard_log_recovers_without_panicking() {
    let dir = temp_dir("trunc");
    let durable = DurableConfig::new(&dir)
        .sync(SyncPolicy::Never)
        .checkpoint_every(0);
    let (p, _) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    let expect = ingest_epochs(&p, 3, 400);
    p.shutdown();

    // Chop the tail off one shard's log: its later epochs are gone.
    let seg = a_shard_segment(&dir);
    let bytes = fs::read(&seg).expect("read");
    fs::write(&seg, &bytes[..bytes.len() - bytes.len() / 3]).expect("truncate");

    let (p2, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("recover");
    // The commit log still names the drain epoch; the damaged shard
    // contributes what survived. No panic, no over-counting.
    assert_eq!(p2.published_epoch(), report.committed_epoch);
    let (snap2, _) = p2.shutdown();
    for (k, (&got, &want)) in snap2.to_vec().iter().zip(&expect).enumerate() {
        assert!(got <= want, "key {k}: recovered {got} > expected {want}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_in_shard_log_recovers_without_panicking() {
    let dir = temp_dir("flip");
    let durable = DurableConfig::new(&dir)
        .sync(SyncPolicy::Never)
        .checkpoint_every(0);
    let (p, _) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    let expect = ingest_epochs(&p, 3, 400);
    p.shutdown();

    let seg = a_shard_segment(&dir);
    let mut bytes = fs::read(&seg).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&seg, &bytes).expect("write");

    let (p2, _) = IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("recover");
    let (snap2, _) = p2.shutdown();
    for (k, (&got, &want)) in snap2.to_vec().iter().zip(&expect).enumerate() {
        assert!(got <= want, "key {k}: recovered {got} > expected {want}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_falls_back_to_wal_replay() {
    let dir = temp_dir("badckpt");
    let durable = DurableConfig::new(&dir)
        .sync(SyncPolicy::Never)
        .checkpoint_every(1);
    let (p, _) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    let expect = ingest_epochs(&p, 3, 300);
    p.shutdown();

    // Corrupt every checkpoint: recovery must fall back to a full replay
    // and still reconstruct the exact committed state.
    let mut corrupted = 0;
    for e in fs::read_dir(&dir).expect("dir").flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with("ckpt-") {
            let mut bytes = fs::read(e.path()).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            fs::write(e.path(), bytes).expect("write");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "expected checkpoints on disk");

    let (p2, report) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable).expect("recover");
    assert_eq!(report.checkpoint_epoch, 0, "all checkpoints rejected");
    assert_eq!(report.replayed_tuples, 3 * 300);
    let (snap2, _) = p2.shutdown();
    assert_eq!(snap2.to_vec(), expect);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn geometry_mismatch_is_an_error_not_a_scramble() {
    let dir = temp_dir("geom");
    let durable = DurableConfig::new(&dir).sync(SyncPolicy::Never);
    let (p, _) =
        IngestPipeline::recover(KEYS, Count, stream_cfg(), durable.clone()).expect("fresh");
    ingest_epochs(&p, 2, 100);
    p.shutdown();

    // Same directory, different key domain: refuse loudly.
    let err = IngestPipeline::recover(KEYS * 2, Count, stream_cfg(), durable)
        .err()
        .expect("must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}
