//! An in-repo S3-FIFO cache for the read path.
//!
//! S3-FIFO (Yang et al., SOSP'23 — "FIFO queues are all you need for
//! cache eviction") keeps three queues:
//!
//! * a **small** probationary FIFO (~10% of capacity) that new entries
//!   enter,
//! * a **main** FIFO (~90%) holding entries that proved themselves, and
//! * a **ghost** FIFO of recently evicted *keys* (no values).
//!
//! An entry evicted from `small` with fewer than two hits is a one-hit
//! wonder: its key goes to `ghost` and its value is dropped, so a flood
//! of cold keys can never displace the hot set resident in `main` —
//! that is the scan resistance the QUERY path wants, because every new
//! epoch's blocks arrive as a burst of first-time keys. An entry whose
//! key is still in `ghost` when it is re-inserted skips probation and
//! goes straight to `main` (it was evicted too early). Entries in `main`
//! get a second chance per round: eviction decrements their hit counter
//! and only removes them at zero.
//!
//! The implementation is dependency-free and interior-locking: one
//! [`Mutex`] guards the queues and the key index, which also lets the
//! hit counters be plain integers (the upstream design this is ported
//! from — `djc/s3-fifo` — shares immutable entries and needs atomics;
//! our values are `Arc`-cheap to clone, so handing out owned clones
//! under the lock is simpler and keeps the hot path allocation-free).
//!
//! `cobra-check`'s `no-hot-path-unwrap` lint covers this crate: the only
//! `expect`s here are lock-poisoning propagation, allowlisted like the
//! stream crate's.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::sync::Mutex;

/// Hit counter ceiling (two bits of state per entry, as in the paper).
const FREQ_MAX: u8 = 3;

/// Hits required for promotion from `small` to `main` at eviction time.
const PROMOTE_AT: u8 = 2;

/// Point-in-time counters of one [`S3FifoCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values inserted (re-inserts of a resident key count too).
    pub insertions: u64,
    /// Values dropped from the cache (small-queue demotions and
    /// main-queue evictions combined).
    pub evictions: u64,
    /// Entries promoted `small` → `main` at eviction time.
    pub promotions: u64,
    /// Inserts that skipped probation because the key was in `ghost`.
    pub ghost_promotions: u64,
    /// Entries resident right now.
    pub len: u64,
    /// Configured capacity (small + main).
    pub capacity: u64,
}

impl CacheStats {
    /// Hit rate over all lookups so far (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    freq: u8,
    in_main: bool,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    small: VecDeque<K>,
    main: VecDeque<K>,
    ghost: VecDeque<K>,
    ghost_set: HashSet<K>,
    small_cap: usize,
    main_cap: usize,
    ghost_cap: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    promotions: u64,
    ghost_promotions: u64,
}

/// A thread-safe S3-FIFO cache handing out owned clones of its values
/// (use `Arc<…>` values to make those clones cheap).
pub struct S3FifoCache<K, V> {
    inner: Mutex<Inner<K, V>>,
}

impl<K: Hash + Eq + Clone, V: Clone> S3FifoCache<K, V> {
    /// A cache holding at most `capacity` entries (~10% probationary,
    /// ~90% main), remembering up to `capacity` evicted keys as ghosts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (both queues need at least one slot).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "cache capacity must be at least 2");
        let small_cap = (capacity / 10).max(1);
        S3FifoCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                small: VecDeque::with_capacity(small_cap),
                main: VecDeque::with_capacity(capacity - small_cap),
                ghost: VecDeque::with_capacity(capacity),
                ghost_set: HashSet::with_capacity(capacity),
                small_cap,
                main_cap: capacity - small_cap,
                ghost_cap: capacity,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                promotions: 0,
                ghost_promotions: 0,
            }),
        }
    }

    /// Looks `key` up, bumping its hit counter on success.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.freq = (entry.freq + 1).min(FREQ_MAX);
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`. A resident key just has its value replaced
    /// (keeping its queue position and hit count); a ghost key skips the
    /// probationary queue.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.insertions += 1;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.value = value;
            return;
        }
        if inner.ghost_set.remove(&key) {
            // Evicted too early last time: straight into main.
            inner.ghost_promotions += 1;
            if inner.main.len() >= inner.main_cap {
                inner.evict_main();
            }
            inner.main.push_back(key.clone());
            inner.map.insert(
                key,
                Entry {
                    value,
                    freq: 0,
                    in_main: true,
                },
            );
            return;
        }
        if inner.small.len() >= inner.small_cap {
            inner.evict_small();
        }
        inner.small.push_back(key.clone());
        inner.map.insert(
            key,
            Entry {
                value,
                freq: 0,
                in_main: false,
            },
        );
    }

    /// Entries resident right now.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            promotions: inner.promotions,
            ghost_promotions: inner.ghost_promotions,
            len: inner.map.len() as u64,
            capacity: (inner.small_cap + inner.main_cap) as u64,
        }
    }
}

impl<K: Hash + Eq + Clone, V> Inner<K, V> {
    /// Frees one probationary slot: entries with enough hits move to
    /// `main`, the first one-hit wonder found is demoted to a ghost.
    fn evict_small(&mut self) {
        while let Some(key) = self.small.pop_front() {
            let Some(entry) = self.map.get_mut(&key) else {
                // Unreachable by construction (queues and map move in
                // lockstep) but harmless to skip.
                continue;
            };
            if entry.freq >= PROMOTE_AT {
                entry.in_main = true;
                entry.freq = 0;
                self.promotions += 1;
                if self.main.len() >= self.main_cap {
                    self.evict_main();
                }
                self.main.push_back(key);
                continue;
            }
            self.map.remove(&key);
            self.evictions += 1;
            self.push_ghost(key);
            return;
        }
    }

    /// Frees one main slot, giving each entry one round of reprieve per
    /// accumulated hit. Terminates because every pass decrements some
    /// entry's counter and counters never increase here.
    fn evict_main(&mut self) {
        while let Some(key) = self.main.pop_front() {
            let Some(entry) = self.map.get_mut(&key) else {
                continue;
            };
            if entry.freq > 0 {
                entry.freq -= 1;
                self.main.push_back(key);
                continue;
            }
            self.map.remove(&key);
            self.evictions += 1;
            self.push_ghost(key);
            return;
        }
    }

    fn push_ghost(&mut self, key: K) {
        if self.ghost.len() >= self.ghost_cap {
            if let Some(old) = self.ghost.pop_front() {
                self.ghost_set.remove(&old);
            }
        }
        self.ghost_set.insert(key.clone());
        self.ghost.push_back(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_replacement_basics() {
        let c: S3FifoCache<u32, u32> = S3FifoCache::new(10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.insert(1, 11); // resident re-insert replaces the value
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ghost_queue_promotes_reinserted_keys_to_main() {
        // capacity 20 → small holds 2. Push three cold keys through the
        // probationary queue: key 1 is demoted to a ghost.
        let c: S3FifoCache<u32, u32> = S3FifoCache::new(20);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3); // evicts 1 (freq 0) to ghost
        assert_eq!(c.get(&1), None);
        assert_eq!(c.stats().evictions, 1);
        // Re-inserting the ghost key goes straight to main…
        c.insert(1, 100);
        assert_eq!(c.stats().ghost_promotions, 1);
        assert_eq!(c.get(&1), Some(100));
        // …where a later one-hit-wonder flood through small can't touch it.
        for k in 10..40 {
            c.insert(k, k);
        }
        assert_eq!(c.get(&1), Some(100));
    }

    #[test]
    fn scan_resistance_hot_set_survives_one_hit_wonder_flood() {
        let c: S3FifoCache<u32, u32> = S3FifoCache::new(50); // small 5, main 45
                                                             // Establish a hot set: each key is hit twice while still on
                                                             // probation, so small-queue overflow promotes it into main.
        for k in 0..20u32 {
            c.insert(k, k * 10);
            assert_eq!(c.get(&k), Some(k * 10));
            assert_eq!(c.get(&k), Some(k * 10));
        }
        // Flood: 500 keys seen exactly once each.
        for k in 1000..1500u32 {
            c.insert(k, 0);
        }
        // The entire hot set survived the scan.
        for k in 0..20u32 {
            assert_eq!(c.get(&k), Some(k * 10), "hot key {k} evicted by scan");
        }
        let s = c.stats();
        assert!(s.promotions >= 20, "hot set promoted to main: {s:?}");
        assert!(s.evictions >= 450, "flood was evicted: {s:?}");
    }

    #[test]
    fn capacity_accounting_never_exceeds_bound() {
        let cap = 30;
        let c: S3FifoCache<u32, u32> = S3FifoCache::new(cap);
        for k in 0..10_000u32 {
            c.insert(k, k);
            // Mixed gets keep some frequencies hot so both promotion and
            // second-chance paths run.
            if k % 3 == 0 {
                let _ = c.get(&k);
                let _ = c.get(&k.saturating_sub(5));
            }
            assert!(c.len() <= cap, "len {} exceeded capacity {cap}", c.len());
        }
        let s = c.stats();
        assert_eq!(s.capacity, cap as u64);
        assert_eq!(s.len as usize, c.len());
        // Conservation: everything inserted was either evicted or resident.
        assert_eq!(s.insertions, 10_000);
        assert_eq!(s.evictions + s.len, 10_000);
    }

    #[test]
    fn main_queue_second_chance_decays_frequencies() {
        // Tiny cache: capacity 2 → small 1, main 1.
        let c: S3FifoCache<u32, u32> = S3FifoCache::new(2);
        c.insert(1, 1);
        let _ = c.get(&1);
        let _ = c.get(&1); // freq 2 → promotable
        c.insert(2, 2); // evict_small promotes 1 to main
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.stats().promotions, 1);
        // Key 2 (freq 0) is demoted by the next insert; key 1 stays.
        c.insert(3, 3);
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn concurrent_access_is_safe_and_conserves_counts() {
        use std::sync::Arc;
        let c: Arc<S3FifoCache<u64, u64>> = Arc::new(S3FifoCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = (t * 1000 + i) % 97;
                    if c.get(&k).is_none() {
                        c.insert(k, k * 2);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("cache worker");
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8_000);
        assert!(c.len() <= 64);
    }
}
