//! WAL-shipping replication, follower side.
//!
//! A follower holds a byte-for-byte copy of the primary's data
//! directory, built by repeated [`sync_round`]s: the follower sends a
//! manifest of the files it already holds (name → length), the primary
//! streams back the missing suffixes, and the follower appends them in
//! place. No replay, no interpretation — the unit of replication is the
//! WAL byte, so every guarantee the recovery path gives a crashed
//! primary transfers verbatim to a promoted follower:
//!
//! * Segments are append-only and a round ships the commit log *last*
//!   (captured on the primary *first*), so the follower's commit log
//!   never leads its shard logs: observable implies durable, on both
//!   machines.
//! * A round that dies mid-stream leaves a torn shard-log tail; recovery
//!   truncates torn tails, exactly as after a primary crash.
//! * Checkpoints are pure acceleration: a torn shipped checkpoint is
//!   skipped by recovery, which falls back to the previous one plus WAL
//!   replay.
//!
//! Promotion is therefore not a protocol step at all — it is starting a
//! `cobra-served`-style process on the follower's directory and letting
//! ordinary crash recovery run.
//!
//! [`sync_round`]: ReplicaSync::sync_round

use cobra_serve::{ClientError, ServeClient};
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Everything that can go wrong in a replication round.
#[derive(Debug)]
pub enum ReplicaError {
    /// Local filesystem failure.
    Io(io::Error),
    /// The connection to the primary failed (the promotion trigger).
    Primary(ClientError),
    /// The primary sent a file name that is not a plain
    /// `shard-NNN/seg-*.wal`, `commit/seg-*.wal` or `ckpt-*.bin` path —
    /// refused before it touches the filesystem.
    BadName(String),
    /// A `Segment` frame's offset does not continue the local file — the
    /// round is aborted rather than writing a gap.
    OffsetGap {
        /// Offending file.
        name: String,
        /// Local length.
        have: u64,
        /// Offset the primary wrote at.
        offset: u64,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Io(e) => write!(f, "replica i/o error: {e}"),
            ReplicaError::Primary(e) => write!(f, "primary unreachable: {e}"),
            ReplicaError::BadName(name) => write!(f, "refused unsafe file name {name:?}"),
            ReplicaError::OffsetGap { name, have, offset } => write!(
                f,
                "segment for {name:?} at offset {offset} but local file has {have} bytes"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<io::Error> for ReplicaError {
    fn from(e: io::Error) -> Self {
        ReplicaError::Io(e)
    }
}

/// Summary of one completed replication round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRound {
    /// Epoch the primary had durably committed when the round started —
    /// after the round, the follower holds everything through it.
    pub epoch: u64,
    /// Files the round touched.
    pub files: u32,
    /// Bytes the round shipped (0 = the follower was already caught up).
    pub bytes: u64,
    /// The primary's committed epoch when it processed the follower's
    /// acknowledgement; `primary_epoch - epoch` is the replication lag.
    pub primary_epoch: u64,
}

/// A follower: one connection to the primary and a local data directory
/// being kept in sync.
pub struct ReplicaSync {
    dir: PathBuf,
    client: ServeClient,
    total_bytes: u64,
    last_epoch: u64,
}

/// True for names safe to join under the replica directory: one optional
/// `shard-NNN/` or `commit/` directory component, then a plain file name,
/// all from the WAL's own alphabet. Everything else — absolute paths,
/// `..`, separators beyond the one slash — is refused.
fn safe_name(name: &str) -> bool {
    if name.is_empty() || name.len() > cobra_serve::protocol::MAX_FILE_NAME {
        return false;
    }
    let mut parts = name.split('/');
    let (a, b) = (parts.next(), parts.next());
    if parts.next().is_some() {
        return false;
    }
    let plain = |s: &str| {
        !s.is_empty()
            && s != "."
            && s != ".."
            && s.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    };
    match (a, b) {
        (Some(file), None) => plain(file),
        (Some(dir), Some(file)) => plain(dir) && plain(file),
        _ => false,
    }
}

/// Lists one directory's `seg-*.wal` files into the manifest under
/// `prefix/`, tolerating the directory not existing yet.
fn manifest_dir(out: &mut Vec<(String, u64)>, dir: &Path, prefix: &str) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("seg-") && name.ends_with(".wal") {
            out.push((format!("{prefix}/{name}"), entry.metadata()?.len()));
        }
    }
    Ok(())
}

/// Builds the manifest of replicated files the directory already holds.
fn manifest(dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == "commit" || name.starts_with("shard-") {
            manifest_dir(&mut out, &entry.path(), name)?;
        } else if name.starts_with("ckpt-") && name.ends_with(".bin") {
            out.push((name.to_string(), entry.metadata()?.len()));
        }
    }
    out.sort();
    Ok(out)
}

impl ReplicaSync {
    /// Connects to the primary and prepares `dir` as the replica copy.
    pub fn connect(primary: &str, dir: impl Into<PathBuf>) -> io::Result<ReplicaSync> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ReplicaSync {
            dir,
            client: ServeClient::connect(primary)?,
            total_bytes: 0,
            last_epoch: 0,
        })
    }

    /// The replica directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one `Segment` frame to its local file, enforcing the
    /// name allowlist and the no-gaps rule.
    fn apply(dir: &Path, name: &str, offset: u64, bytes: &[u8]) -> Result<(), ReplicaError> {
        if !safe_name(name) {
            return Err(ReplicaError::BadName(name.to_string()));
        }
        let path = dir.join(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let have = file.metadata()?.len();
        if have != offset {
            return Err(ReplicaError::OffsetGap {
                name: name.to_string(),
                have,
                offset,
            });
        }
        let mut file = file;
        file.write_all(bytes)?;
        Ok(())
    }

    /// One manifest → segments → acknowledgement round trip. An already
    /// caught-up follower gets an empty round (`bytes == 0`) — polling
    /// this in a loop *is* the replication daemon.
    pub fn sync_round(&mut self) -> Result<ReplicaRound, ReplicaError> {
        let manifest = manifest(&self.dir)?;
        let dir = self.dir.clone();
        // An apply error must abort the stream decisively: surfacing it
        // as an I/O error tears the connection down, so a half-applied
        // round is never acknowledged.
        let mut apply_failure = None;
        let result = self.client.replicate(manifest, |name, offset, bytes| {
            match Self::apply(&dir, name, offset, bytes) {
                Ok(()) => Ok(()),
                Err(e) => {
                    let io_err = io::Error::other(e.to_string());
                    apply_failure = Some(e);
                    Err(io_err)
                }
            }
        });
        let (epoch, files, bytes) = match result {
            Ok(done) => done,
            Err(e) => {
                return Err(match apply_failure {
                    Some(local) => local,
                    None => ReplicaError::Primary(e),
                })
            }
        };
        self.total_bytes += bytes;
        self.last_epoch = epoch;
        let primary_epoch = self
            .client
            .ack(epoch, self.total_bytes)
            .map_err(ReplicaError::Primary)?;
        Ok(ReplicaRound {
            epoch,
            files,
            bytes,
            primary_epoch,
        })
    }

    /// The newest epoch a completed round has covered.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Total bytes shipped over this connection.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_allowlist_refuses_traversal() {
        for good in [
            "ckpt-00000000000000000003.bin",
            "commit/seg-00000000.wal",
            "shard-007/seg-00000012.wal",
        ] {
            assert!(safe_name(good), "{good:?} should be allowed");
        }
        for bad in [
            "",
            "..",
            "../x",
            "a/../b",
            "/etc/passwd",
            "a/b/c",
            "shard-000/",
            "/seg-0.wal",
            "a\\b",
            "seg\0.wal",
            "shard-000/..",
        ] {
            assert!(!safe_name(bad), "{bad:?} must be refused");
        }
    }

    #[test]
    fn apply_enforces_contiguity() {
        let dir = std::env::temp_dir().join(format!("cobra-replica-apply-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        ReplicaSync::apply(&dir, "shard-000/seg-00000000.wal", 0, b"abcd").unwrap();
        ReplicaSync::apply(&dir, "shard-000/seg-00000000.wal", 4, b"efgh").unwrap();
        let err = ReplicaSync::apply(&dir, "shard-000/seg-00000000.wal", 12, b"late").unwrap_err();
        assert!(matches!(
            err,
            ReplicaError::OffsetGap {
                have: 8,
                offset: 12,
                ..
            }
        ));
        assert_eq!(
            fs::read(dir.join("shard-000/seg-00000000.wal")).unwrap(),
            b"abcdefgh"
        );
        let mut m = manifest(&dir).unwrap();
        m.sort();
        assert_eq!(m, vec![("shard-000/seg-00000000.wal".to_string(), 8)]);
        let _ = fs::remove_dir_all(&dir);
    }
}
