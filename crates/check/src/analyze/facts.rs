//! Per-function fact extraction: calls, lock acquisitions (with held
//! ranges), atomic sites with orderings, and frame-tag mentions.
//!
//! Facts are token-index based so the rules can reason about order and
//! overlap ("lock B acquired while lock A is held") without a real CFG.
//! Held ranges use two statement-shape heuristics, both conservative:
//!
//! * a **let-bound** guard (`let g = m.lock()…;`, including
//!   `let x = { let g = m.lock()…; … }`) is held to the end of the
//!   innermost enclosing block;
//! * a **temporary** guard (`m.lock().unwrap().field = v;`) is held to
//!   the end of the statement — and when the statement runs into a `{`
//!   before any `;` (a `for`/`if`/`while` header such as
//!   `for line in stdin.lock().lines() { … }`), to the end of that
//!   block, which is exactly how long the borrow lives.

use super::items::{match_brace, match_paren};
use super::lexer::{Kind, Tok};

/// Atomic methods the analyzer recognizes, with their access class.
const ATOMIC_METHODS: &[(&str, bool, bool)] = &[
    // (name, store-class, load-class)
    ("load", false, true),
    ("store", true, false),
    ("swap", true, true),
    ("fetch_add", true, true),
    ("fetch_sub", true, true),
    ("fetch_and", true, true),
    ("fetch_or", true, true),
    ("fetch_xor", true, true),
    ("fetch_max", true, true),
    ("fetch_min", true, true),
    ("fetch_update", true, true),
    ("compare_exchange", true, true),
    ("compare_exchange_weak", true, true),
];

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "let", "move", "as", "ref",
    "mut", "await", "fn", "impl", "where", "pub", "use", "dyn",
];

/// A lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the receiver field/static name (`seal_lock`,
    /// `GATE`, `state`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the `lock` method ident.
    pub tok: usize,
    /// Token index through which the guard is (conservatively) held.
    pub held_to: usize,
    /// True when the receiver is one of the enclosing fn's parameters —
    /// the fn is then a *forwarder* and the real lock is named at each
    /// call site.
    pub via_param: bool,
}

/// A call site (free fn, method, or path call — the unqualified name).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the callee ident.
    pub tok: usize,
    /// Token span `[open_paren, close_paren]` of the arguments.
    pub args: (usize, usize),
}

/// An atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Field/static the atomic lives in (`epochs_published`, `ENABLED`).
    pub field: String,
    /// Method name (`store`, `fetch_add`, …).
    pub method: String,
    /// 1-based line.
    pub line: u32,
    /// `Ordering::X` names found in the arguments.
    pub orderings: Vec<String>,
    /// Store-class access (store or RMW).
    pub store_class: bool,
    /// Load-class access (load or RMW).
    pub load_class: bool,
}

/// Everything a rule needs to know about one fn body.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Call sites, in body order.
    pub calls: Vec<CallSite>,
    /// Direct lock acquisitions, in body order.
    pub locks: Vec<LockSite>,
    /// Atomic sites, in body order.
    pub atomics: Vec<AtomicSite>,
    /// `Frame::X` mentions (variant name, line).
    pub frames: Vec<(String, u32)>,
    /// `op::X` / `opcodes::X` mentions (const name, line).
    pub opcodes: Vec<(String, u32)>,
    /// All identifier texts mentioned (for coarse containment checks
    /// such as "body mentions `EpochCommit`").
    pub idents: Vec<String>,
}

/// True if the body span `[start, end]` around `i` contains a `let`
/// between the previous statement boundary and `i` — i.e. the value at
/// `i` is let-bound.
pub(crate) fn is_let_bound(toks: &[Tok], start: usize, i: usize) -> bool {
    let mut j = i;
    while j > start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("let") {
            return true;
        }
    }
    false
}

/// Token index of the `}` closing the innermost block containing `i`
/// (clamped to `end`).
pub(crate) fn enclosing_block_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j <= end && j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
        j += 1;
    }
    end
}

/// End of the statement containing `i`: the next top-level `;`, or —
/// when a block opens first (loop/if header) — the end of that block,
/// or the `}` that closes the surrounding block (expression tail).
pub(crate) fn stmt_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = i;
    while j <= end && j < toks.len() {
        let t = &toks[j];
        if t.kind == Kind::Punct {
            match t.text.as_bytes()[0] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b';' if paren == 0 && bracket == 0 => return j,
                b'{' if paren == 0 && bracket == 0 => return match_brace(toks, j).min(end),
                b'}' if paren == 0 && bracket == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

/// Resolves the receiver name of a method call: the ident before the
/// `.` at `dot`, walking back over one balanced `()` group if present
/// (`io::stdin().lock()` → `stdin`).
fn receiver_name(toks: &[Tok], dot: usize) -> String {
    if dot == 0 {
        return "<expr>".into();
    }
    let mut j = dot - 1;
    if toks[j].is_punct(')') {
        // Walk back to the matching `(` and take the ident before it.
        let mut depth = 0i32;
        loop {
            let t = &toks[j];
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return "<expr>".into();
            }
            j -= 1;
        }
        if j == 0 {
            return "<expr>".into();
        }
        j -= 1;
    }
    if toks[j].kind == Kind::Ident {
        toks[j].text.clone()
    } else {
        "<expr>".into()
    }
}

/// Extracts [`FnFacts`] from the token span `[start, end]` (inclusive of
/// both body braces) of one fn.
pub fn extract(toks: &[Tok], start: usize, end: usize, params: &[String]) -> FnFacts {
    let mut facts = FnFacts::default();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        facts.idents.push(t.text.clone());
        let after_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_is_paren = i < end && i + 1 < toks.len() && toks[i + 1].is_punct('(');

        // Frame:: / op:: / opcodes:: path mentions.
        if (t.text == "Frame" || t.text == "op" || t.text == "opcodes")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == Kind::Ident
        {
            let entry = (toks[i + 3].text.clone(), t.line);
            if t.text == "Frame" {
                facts.frames.push(entry);
            } else {
                facts.opcodes.push(entry);
            }
        }

        if next_is_paren {
            let close = match_paren(toks, i + 1);
            // Lock acquisition: `<recv>.lock()`.
            if t.text == "lock" && after_dot {
                let name = receiver_name(toks, i - 1);
                let via_param = params.contains(&name);
                let held_to = if is_let_bound(toks, start, i) {
                    enclosing_block_end(toks, i, end)
                } else {
                    stmt_end(toks, i, end)
                };
                facts.locks.push(LockSite {
                    name,
                    line: t.line,
                    tok: i,
                    held_to,
                    via_param,
                });
            }
            // Atomic site: `<field>.store(v, Ordering::X)` etc. Only
            // counted when an `Ordering::` path appears in the args —
            // that is what separates atomics from e.g. `Vec::store`.
            if after_dot {
                if let Some(&(_, st, ld)) = ATOMIC_METHODS.iter().find(|(m, _, _)| *m == t.text) {
                    let mut orderings = Vec::new();
                    let mut k = i + 2;
                    while k + 3 <= close {
                        if toks[k].is_ident("Ordering")
                            && toks[k + 1].is_punct(':')
                            && toks[k + 2].is_punct(':')
                            && toks[k + 3].kind == Kind::Ident
                        {
                            orderings.push(toks[k + 3].text.clone());
                            k += 4;
                            continue;
                        }
                        k += 1;
                    }
                    if !orderings.is_empty() {
                        facts.atomics.push(AtomicSite {
                            field: receiver_name(toks, i - 1),
                            method: t.text.clone(),
                            line: t.line,
                            orderings,
                            store_class: st,
                            load_class: ld,
                        });
                    }
                }
            }
            // Call site: any non-keyword ident followed by `(` that is
            // not a macro (`name!(…)` has a `!` between) and not the
            // `fn` name itself (previous token `fn`).
            let is_def = i > 0 && toks[i - 1].is_ident("fn");
            if !is_def && !CALLISH_KEYWORDS.contains(&t.text.as_str()) {
                facts.calls.push(CallSite {
                    name: t.text.clone(),
                    line: t.line,
                    tok: i,
                    args: (i + 1, close),
                });
            }
        }
        i += 1;
    }
    facts
}

/// The last identifier inside an argument span — used to name the real
/// lock at a forwarder call site (`lock(&GATE)` → `GATE`,
/// `lock(&self.inner)` → `inner`).
pub fn last_arg_ident(toks: &[Tok], args: (usize, usize)) -> Option<String> {
    let (open, close) = args;
    let mut found = None;
    for t in toks.iter().take(close).skip(open + 1) {
        if t.kind == Kind::Ident && t.text != "self" && t.text != "mut" {
            found = Some(t.text.clone());
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;

    fn facts_of(body: &str) -> (Vec<Tok>, FnFacts) {
        let toks = lex(body);
        let f = extract(&toks, 0, toks.len() - 1, &[]);
        (toks, f)
    }

    #[test]
    fn let_bound_guard_held_to_block_end() {
        let (toks, f) = facts_of("{ let g = m.lock().unwrap(); touch(); }");
        assert_eq!(f.locks.len(), 1);
        let end = f.locks[0].held_to;
        assert!(toks[end].is_punct('}'), "held to the closing brace");
        // The `touch` call is inside the held range.
        let call = f.calls.iter().find(|c| c.name == "touch").expect("touch");
        assert!(call.tok < end);
    }

    #[test]
    fn temporary_guard_held_to_statement_end() {
        let (toks, f) = facts_of("{ m.lock().unwrap().n += 1; after(); }");
        assert_eq!(f.locks.len(), 1);
        assert!(toks[f.locks[0].held_to].is_punct(';'));
        let after = f.calls.iter().find(|c| c.name == "after").expect("after");
        assert!(after.tok > f.locks[0].held_to, "released before after()");
    }

    #[test]
    fn loop_header_guard_held_through_body() {
        let (toks, f) = facts_of("{ for line in stdin.lock().lines() { use_it(); } done(); }");
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].name, "stdin");
        let end = f.locks[0].held_to;
        assert!(toks[end].is_punct('}'));
        let use_it = f.calls.iter().find(|c| c.name == "use_it").expect("use_it");
        let done = f.calls.iter().find(|c| c.name == "done").expect("done");
        assert!(use_it.tok < end, "held through the loop body");
        assert!(done.tok > end, "released after the loop");
    }

    #[test]
    fn atomics_require_an_ordering_and_classify() {
        let (_, f) = facts_of(
            "{ self.n.store(1, Ordering::Release); self.n.load(Ordering::Acquire); v.store(x); }",
        );
        assert_eq!(f.atomics.len(), 2, "v.store(x) has no Ordering");
        assert!(f.atomics[0].store_class && !f.atomics[0].load_class);
        assert_eq!(f.atomics[0].orderings, vec!["Release"]);
        assert_eq!(f.atomics[1].field, "n");
        assert!(f.atomics[1].load_class);
    }

    #[test]
    fn rmw_is_both_classes_and_cas_collects_both_orderings() {
        let (_, f) = facts_of("{ c.compare_exchange(a, b, Ordering::AcqRel, Ordering::Relaxed); }");
        assert_eq!(f.atomics.len(), 1);
        let a = &f.atomics[0];
        assert!(a.store_class && a.load_class);
        assert_eq!(a.orderings, vec!["AcqRel", "Relaxed"]);
    }

    #[test]
    fn frames_ops_and_forwarder_args() {
        let (toks, f) = facts_of(
            "{ match fr { Frame::Seal { epoch } => op::SEAL, _ => op::ACK, }; lock(&GATE); }",
        );
        assert_eq!(f.frames, vec![("Seal".into(), 1)]);
        assert_eq!(f.opcodes.len(), 2);
        let call = f
            .calls
            .iter()
            .find(|c| c.name == "lock")
            .expect("lock call");
        assert_eq!(last_arg_ident(&toks, call.args), Some("GATE".into()));
    }

    #[test]
    fn param_receiver_marks_via_param() {
        let toks = lex("{ match m.lock() { Ok(g) => g, Err(p) => p.into_inner() } }");
        let f = extract(&toks, 0, toks.len() - 1, &["m".to_string()]);
        assert_eq!(f.locks.len(), 1);
        assert!(f.locks[0].via_param);
    }

    #[test]
    fn macros_are_not_calls() {
        let (_, f) = facts_of("{ println!(\"{}\", x); real(); }");
        assert!(f.calls.iter().all(|c| c.name != "println"));
        assert!(f.calls.iter().any(|c| c.name == "real"));
    }
}
