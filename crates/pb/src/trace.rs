//! Event tracing hooks for the checking subsystem (`cobra-check`).
//!
//! Compiled only under the `check` feature; with the feature off every
//! hook call site disappears entirely, so the hot paths carry zero cost.
//! With the feature on but no capture in progress, each hook is a single
//! `Relaxed` atomic load and an early return.
//!
//! The trace is a flat, globally-serialized event log. Happens-before
//! edges between threads are expressed with an explicit fork/join token
//! protocol: the parent emits [`Event::Fork`] before spawning, the child
//! emits [`Event::ChildStart`] with the same token as its first action,
//! and the parent emits [`Event::Join`] after `join()` returns. The
//! FastTrack-style detector in `cobra-check` rebuilds vector clocks from
//! exactly these three edges.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One dynamic event in a traced binning/accumulate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The parent thread is about to spawn a child identified by `token`.
    Fork {
        /// Trace thread id of the spawning thread.
        parent: u32,
        /// Unique token pairing this fork with a `ChildStart`/`Join`.
        token: u64,
    },
    /// First action of a spawned child; pairs with the `Fork` of `token`.
    ChildStart {
        /// Trace thread id of the child thread.
        thread: u32,
        /// Token of the matching `Fork`.
        token: u64,
    },
    /// The parent observed the child's termination (`join()` returned).
    Join {
        /// Trace thread id of the joining (parent) thread.
        parent: u32,
        /// Token of the matching `Fork`.
        token: u64,
    },
    /// A tuple was routed into a bin during the Binning phase.
    BinWrite {
        /// Trace thread id of the writer.
        thread: u32,
        /// Bin index the tuple was appended to.
        bin: u32,
        /// The tuple's key.
        key: u32,
        /// log2 of the bin key range (for the routing invariant).
        shift: u32,
    },
    /// A binner's buffered tuples were flushed ([`ALL_BINS`] = all bins).
    BinFlush {
        /// Trace thread id of the flusher.
        thread: u32,
        /// Flushed bin index, or [`ALL_BINS`].
        bin: u32,
    },
    /// An output-array write during the Accumulate phase.
    AccWrite {
        /// Trace thread id of the writer.
        thread: u32,
        /// Bin whose replay produced this write.
        bin: u32,
        /// The output key being written.
        key: u32,
        /// log2 of the bin key range (for the ownership invariant).
        shift: u32,
    },
}

/// Sentinel `bin` value in [`Event::BinFlush`] meaning "all bins".
pub const ALL_BINS: u32 = u32::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);
static LOG: Mutex<Vec<Event>> = Mutex::new(Vec::new());
/// Serializes concurrent `capture` calls (e.g. parallel test threads).
static GATE: Mutex<()> = Mutex::new(());

thread_local! {
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Locks `m`, shrugging off poison: the log holds plain-old-data and a
/// panicking recorder leaves it structurally intact.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Stable trace id of the calling thread (assigned on first use, never
/// reused within a process).
pub fn thread_id() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != u32::MAX {
            v
        } else {
            // ordering: Relaxed — a fresh-id counter; uniqueness is all we
            // need and fetch_add provides it on any ordering.
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

#[inline]
fn record(ev: Event) {
    // ordering: Relaxed — ENABLED is a pure on/off gate, toggled only while
    // the capture GATE mutex is held; the LOG mutex below orders the
    // recorded events themselves. A hook racing a toggle merely drops or
    // keeps a boundary event, which capture() tolerates by clearing first.
    if ENABLED.load(Ordering::Relaxed) {
        lock(&LOG).push(ev);
    }
}

/// Whether a [`capture`] is currently in progress.
pub fn is_capturing() -> bool {
    // ordering: Relaxed — advisory query; see `record`.
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` with event recording enabled and returns its result together
/// with the events recorded during the run. Concurrent captures are
/// serialized on a global gate, so traces never interleave.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    struct DisableOnDrop;
    impl Drop for DisableOnDrop {
        fn drop(&mut self) {
            // ordering: SeqCst — cheap (once per capture) and makes the
            // toggle globally ordered against in-flight hooks.
            // analyze: R8-allowlisted (analyze-allow.txt) — the paired
            // loads in record()/is_capturing() are deliberately Relaxed;
            // a stale read only drops/keeps a boundary event.
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
    let _gate = lock(&GATE);
    lock(&LOG).clear();
    // ordering: SeqCst — see DisableOnDrop.
    // analyze: R8-allowlisted (analyze-allow.txt) — one-sided by design.
    ENABLED.store(true, Ordering::SeqCst);
    let _off = DisableOnDrop;
    let r = f();
    drop(_off);
    let events = std::mem::take(&mut *lock(&LOG));
    (r, events)
}

/// Emits a [`Event::Fork`] and returns the token the spawned child must
/// pass to [`child_start`] and the parent to [`join`].
pub fn fork() -> u64 {
    // ordering: Relaxed — token uniqueness only; the fork/join ordering the
    // detector relies on comes from the log serialization, not this counter.
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    record(Event::Fork {
        parent: thread_id(),
        token,
    });
    token
}

/// First call in a spawned child: emits [`Event::ChildStart`].
pub fn child_start(token: u64) {
    record(Event::ChildStart {
        thread: thread_id(),
        token,
    });
}

/// Called by the parent after `join()` returns: emits [`Event::Join`].
pub fn join(token: u64) {
    record(Event::Join {
        parent: thread_id(),
        token,
    });
}

/// Records a Binning-phase tuple write into `bin`.
#[inline]
pub fn bin_write(bin: usize, key: u32, shift: u32) {
    record(Event::BinWrite {
        thread: thread_id(),
        bin: bin as u32,
        key,
        shift,
    });
}

/// Records a whole-binner flush (C-Buffers drained into bins).
#[inline]
pub fn bin_flush_all() {
    record(Event::BinFlush {
        thread: thread_id(),
        bin: ALL_BINS,
    });
}

/// Records an Accumulate-phase output write for `key` while replaying `bin`.
#[inline]
pub fn acc_write(bin: usize, key: u32, shift: u32) {
    record(Event::AccWrite {
        thread: thread_id(),
        bin: bin as u32,
        key,
        shift,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_only_events_within_the_window() {
        bin_write(0, 1, 0); // outside: dropped
        let ((), events) = capture(|| {
            bin_write(3, 200, 6);
            acc_write(3, 200, 6);
        });
        bin_write(0, 2, 0); // outside: dropped
        let me = thread_id();
        assert_eq!(
            events,
            vec![
                Event::BinWrite {
                    thread: me,
                    bin: 3,
                    key: 200,
                    shift: 6
                },
                Event::AccWrite {
                    thread: me,
                    bin: 3,
                    key: 200,
                    shift: 6
                },
            ]
        );
    }

    #[test]
    fn fork_join_tokens_pair_up() {
        let ((), events) = capture(|| {
            let token = fork();
            let handle = std::thread::spawn(move || child_start(token));
            handle.join().expect("child ok");
            join(token);
        });
        let mut forked = None;
        for ev in &events {
            match *ev {
                Event::Fork { token, .. } => forked = Some(token),
                Event::ChildStart { token, .. } | Event::Join { token, .. } => {
                    assert_eq!(Some(token), forked);
                }
                _ => {}
            }
        }
        assert_eq!(events.len(), 3);
    }
}
