//! Pointer-identity accounting over `Arc`-shared segments.
//!
//! Freeze-to-`Arc` publishing means the same slab segment can back many
//! epoch snapshots at once: an epoch that leaves a key range untouched
//! re-publishes the previous epoch's segment handle unchanged. Two
//! consequences fall out of that sharing, and this module is the common
//! vocabulary for both:
//!
//! * **Retention accounting** — the memory a window of epochs actually
//!   holds is the byte size of its *unique* segment allocations, not
//!   `epochs × segments`. [`SegmentSet`] deduplicates by `Arc` pointer
//!   identity, so a retention layer can report (and bound) real bytes.
//! * **Diff-by-identity** — if two snapshots hold the *same* `Arc` for a
//!   segment, no key in that segment changed between them; only
//!   divergent segments need a value-level comparison.
//!   [`divergent_segments`] computes that candidate set in
//!   O(num_segments) pointer compares.
//!
//! Both are read-only views over the reference counts std maintains:
//! "GC" for a retained epoch window is nothing more than dropping the
//! window's `Arc` handles — a segment is freed exactly when no retained
//! epoch still names it.

use std::collections::HashSet;
use std::sync::Arc;

/// A set of segment allocations keyed by `Arc` pointer identity, with
/// byte accounting of the unique allocations.
///
/// Insert every segment handle of every retained snapshot; the set
/// counts each underlying allocation once no matter how many epochs
/// share it.
#[derive(Debug, Default)]
pub struct SegmentSet {
    seen: HashSet<usize>,
    unique_bytes: u64,
    handles: u64,
}

impl SegmentSet {
    /// An empty set.
    pub fn new() -> Self {
        SegmentSet::default()
    }

    /// Inserts one segment handle. Returns `true` when this allocation
    /// was not seen before (and its bytes were added to the tally).
    pub fn insert<T>(&mut self, segment: &Arc<Vec<T>>) -> bool {
        self.handles += 1;
        let addr = Arc::as_ptr(segment) as usize;
        let fresh = self.seen.insert(addr);
        if fresh {
            self.unique_bytes += (segment.len() * std::mem::size_of::<T>()) as u64;
        }
        fresh
    }

    /// Total bytes of the unique segment allocations inserted so far
    /// (element payload only, excluding `Vec`/`Arc` headers).
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// Number of distinct segment allocations seen.
    pub fn unique_segments(&self) -> usize {
        self.seen.len()
    }

    /// Number of handles inserted, shared or not. `handles /
    /// unique_segments` is the sharing factor the COW scheme achieves.
    pub fn handles(&self) -> u64 {
        self.handles
    }
}

/// Indices of the segments that *may* differ between two snapshots'
/// segment lists: positions where the `Arc` handles are not pointer-equal
/// (plus any tail positions present in only one list).
///
/// Pointer equality is a proof of value equality under copy-on-write
/// publishing (a shared segment was never rewritten between the two
/// epochs); pointer inequality only marks a candidate — the caller
/// compares values inside divergent segments to materialize actual
/// changes.
pub fn divergent_segments<T>(a: &[Arc<Vec<T>>], b: &[Arc<Vec<T>>]) -> Vec<usize> {
    let common = a.len().min(b.len());
    let mut out: Vec<usize> = (0..common)
        .filter(|&i| !Arc::ptr_eq(&a[i], &b[i]))
        .collect();
    out.extend(common..a.len().max(b.len()));
    out
}

/// How many live handles (snapshots, caches, in-flight readers) share
/// `segment`'s allocation right now. Retention tests use this to prove
/// the window's GC never frees a segment a retained epoch still names.
pub fn segment_refs<T>(segment: &Arc<Vec<T>>) -> usize {
    Arc::strong_count(segment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_set_counts_each_allocation_once() {
        let a = Arc::new(vec![0u64; 8]);
        let b = Arc::new(vec![0u64; 4]);
        let a2 = Arc::clone(&a);

        let mut set = SegmentSet::new();
        assert!(set.insert(&a));
        assert!(set.insert(&b));
        assert!(!set.insert(&a2), "clone of a shares its allocation");

        assert_eq!(set.unique_segments(), 2);
        assert_eq!(set.handles(), 3);
        assert_eq!(set.unique_bytes(), (8 + 4) * 8);
    }

    #[test]
    fn equal_values_in_distinct_allocations_still_count_twice() {
        // Identity, not equality: two epochs that computed the same
        // bytes in different allocations really do hold them twice.
        let a = Arc::new(vec![7u64; 8]);
        let b = Arc::new(vec![7u64; 8]);
        let mut set = SegmentSet::new();
        set.insert(&a);
        set.insert(&b);
        assert_eq!(set.unique_segments(), 2);
        assert_eq!(set.unique_bytes(), 2 * 8 * 8);
    }

    #[test]
    fn divergent_segments_skips_shared_handles() {
        let shared = Arc::new(vec![1u64; 8]);
        let old = vec![Arc::clone(&shared), Arc::new(vec![2u64; 8])];
        let new = vec![Arc::clone(&shared), Arc::new(vec![3u64; 8])];
        assert_eq!(divergent_segments(&old, &new), vec![1]);
    }

    #[test]
    fn divergent_segments_covers_length_mismatch() {
        let shared = Arc::new(vec![1u64; 8]);
        let old = vec![Arc::clone(&shared)];
        let new = vec![Arc::clone(&shared), Arc::new(vec![2u64; 8])];
        assert_eq!(divergent_segments(&old, &new), vec![1]);
        assert_eq!(divergent_segments(&new, &old), vec![1]);
    }

    #[test]
    fn segment_refs_tracks_sharing() {
        let seg = Arc::new(vec![0u64; 8]);
        assert_eq!(segment_refs(&seg), 1);
        let held = Arc::clone(&seg);
        assert_eq!(segment_refs(&seg), 2);
        drop(held);
        assert_eq!(segment_refs(&seg), 1);
    }
}
