//! Golden equivalence of the columnar [`cobra_bins::BinStore`] path
//! against the array-of-structs representation it replaced.
//!
//! The original seed stored each bin as a `Vec<(u32, V)>`; the storage
//! unification moved every layer onto per-bin `keys`/`values` columns.
//! These tests rebuild the AoS semantics inline (plain nested Vecs, the
//! exact insert logic the seed used) and assert the library path is
//! bit-identical: same bin routing, same within-bin arrival order, same
//! values, same accumulate visitation order. Kernel-level equivalence
//! across all nine kernels (batch and streaming) is covered by
//! `cobra_kernels::suite::tests::every_kernel_runs_in_every_mode_with_matching_digests`
//! and the streaming tests; this file pins down the storage layer itself.

use cobra_pb::Binner;

/// Local SplitMix64 (`cobra-pb` has no dependency on `cobra-graph`;
/// same constants as `cobra_graph::rng::SplitMix64`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn u32_below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % bound.max(1) as u64) as u32
    }
}

/// The seed's AoS binning: route by shift, push in arrival order.
fn aos_bins(tuples: &[(u32, u64)], shift: u32, num_bins: usize) -> Vec<Vec<(u32, u64)>> {
    let mut bins = vec![Vec::new(); num_bins];
    for &(k, v) in tuples {
        bins[(k >> shift) as usize].push((k, v));
    }
    bins
}

fn skewed_tuples(n: usize, num_keys: u32, seed: u64) -> Vec<(u32, u64)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // 80% of tuples on the low 10% of keys: exercises uneven bin
            // growth (some bins span many slab segments, some stay empty).
            let key = if rng.u32_below(10) < 8 {
                rng.u32_below((num_keys / 10).max(1))
            } else {
                rng.u32_below(num_keys)
            };
            (key, rng.next_u64())
        })
        .collect()
}

#[test]
fn binner_is_bit_identical_to_aos_reference() {
    let num_keys = 1 << 14;
    let tuples = skewed_tuples(200_000, num_keys, 0xA05);

    let mut binner = Binner::<u64>::new(num_keys, 64);
    for &(k, v) in &tuples {
        binner.insert(k, v);
    }
    let bins = binner.finish();
    let want = aos_bins(&tuples, bins.bin_shift(), bins.num_bins());

    assert_eq!(
        bins.len(),
        tuples.len(),
        "columnar store lost or duplicated tuples"
    );
    for (b, want_bin) in want.iter().enumerate() {
        let got: Vec<(u32, u64)> = bins.iter_bin(b).map(|t| (t.key, t.value)).collect();
        assert_eq!(&got, want_bin, "bin {b} differs from the AoS reference");
    }
}

#[test]
fn accumulate_visits_in_aos_iteration_order() {
    let num_keys = 1 << 10;
    let tuples = skewed_tuples(20_000, num_keys, 0xACC);

    let mut binner = Binner::<u64>::new(num_keys, 16);
    for &(k, v) in &tuples {
        binner.insert(k, v);
    }
    let bins = binner.finish();
    let want: Vec<(u32, u64)> = aos_bins(&tuples, bins.bin_shift(), bins.num_bins())
        .into_iter()
        .flatten()
        .collect();

    let mut got = Vec::with_capacity(want.len());
    bins.accumulate(|k, &v| got.push((k, v)));
    assert_eq!(got, want, "accumulate order diverged from AoS bin order");
}

#[test]
fn exact_reserve_path_matches_unsized_path() {
    // The Init pre-pass reserves exact per-bin counts; binning into a
    // pre-sized store must produce the same columns as growing on demand.
    let num_keys = 1 << 12;
    let tuples = skewed_tuples(50_000, num_keys, 0x5E5);

    let mut grown = Binner::<u64>::new(num_keys, 32);
    let mut sized = Binner::<u64>::new(num_keys, 32);
    let shift = grown.bin_shift();
    let mut counts = vec![0u32; grown.num_bins()];
    for &(k, _) in &tuples {
        counts[(k >> shift) as usize] += 1;
    }
    sized.reserve(&counts);
    for &(k, v) in &tuples {
        grown.insert(k, v);
        sized.insert(k, v);
    }
    let (grown, sized) = (grown.finish(), sized.finish());
    // Every capacity acquisition counts as a grow event, so an exact
    // reserve shows one per non-empty bin and no mid-binning regrowth;
    // the on-demand path pays extra doubling grows on the hot bins.
    let nonempty = counts.iter().filter(|&&c| c > 0).count() as u64;
    assert_eq!(
        sized.store().grow_events(),
        nonempty,
        "exact reserve should acquire each bin's capacity exactly once"
    );
    assert!(
        grown.store().grow_events() > sized.store().grow_events(),
        "on-demand growth should regrow hot bins"
    );
    for b in 0..grown.num_bins() {
        assert!(grown.iter_bin(b).eq(sized.iter_bin(b)), "bin {b} differs");
    }
}
