//! The long-lived ingestion pipeline: handles → shard FIFOs → binning
//! workers → epoch accumulator → published snapshots.

use crate::channel::{self, ChannelCounters, Sender};
use crate::epoch::{AccMsg, Accumulator, EpochSink, EpochSnapshot, PublishHook};
use crate::reducer::Reducer;
use crate::shard::{ShardMsg, ShardWal, ShardWorker};
use crate::stats::{ShardCounters, ShardStats, StreamStats};
use cobra_pb::{Binner, Tuple};
use cobra_wal::WalStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Error returned by handle operations after the pipeline has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineClosed;

impl std::fmt::Display for PipelineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest pipeline has shut down")
    }
}

impl std::error::Error for PipelineClosed {}

/// Error returned by [`IngestHandle::try_send`]. In both cases the
/// offered tuple was **not** accepted and may simply be retried later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryIngestError {
    /// The destination shard's FIFO is full right now; accepting the
    /// tuple would have required blocking (`WouldBlock` analogue).
    Busy,
    /// The pipeline has shut down; the tuple can never be delivered.
    Closed,
}

impl std::fmt::Display for TryIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryIngestError::Busy => write!(f, "shard FIFO full, tuple not accepted"),
            TryIngestError::Closed => write!(f, "ingest pipeline has shut down"),
        }
    }
}

impl std::error::Error for TryIngestError {}

/// Tuning knobs of an [`IngestPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Requested shard workers. The actual count is
    /// `min(shards, num_keys)`-ish: the shard key span is rounded to a
    /// power of two (routing is a shift, as in [`Binner`]).
    pub shards: usize,
    /// Capacity, in messages, of each shard's ingest FIFO (the eviction
    /// buffer analogue). Undersize it and producers observably stall.
    pub channel_capacity: usize,
    /// Tuples coalesced per handle-side batch before it is shipped (the
    /// C-Buffer-line analogue).
    pub batch_tuples: usize,
    /// Minimum bins per shard binner (per-shard accumulate granularity).
    pub min_bins_per_shard: usize,
    /// Auto-seal an epoch every this many ingested tuples (`None` =
    /// only explicit [`seal_epoch`](IngestPipeline::seal_epoch) calls and
    /// the final drain).
    pub epoch_tuples: Option<u64>,
    /// Keys per copy-on-write snapshot segment. Publishing an epoch clones
    /// one `Arc` per segment; an epoch's first write into a segment copies
    /// just that segment. Smaller segments → cheaper sparse epochs, more
    /// handles per publish. A serving layer that caches value blocks
    /// should set this to its block size so cache fills can share the
    /// snapshot segments zero-copy.
    pub snapshot_segment_keys: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            channel_capacity: 64,
            batch_tuples: 64,
            min_bins_per_shard: 16,
            epoch_tuples: None,
            snapshot_segment_keys: 1024,
        }
    }
}

impl StreamConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the requested shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets each shard FIFO's capacity in messages.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity;
        self
    }

    /// Sets the handle-side coalescing batch size in tuples.
    pub fn batch_tuples(mut self, tuples: usize) -> Self {
        self.batch_tuples = tuples;
        self
    }

    /// Sets the minimum bins per shard binner.
    pub fn min_bins_per_shard(mut self, bins: usize) -> Self {
        self.min_bins_per_shard = bins;
        self
    }

    /// Seals an epoch automatically every `tuples` ingested tuples.
    pub fn epoch_tuples(mut self, tuples: u64) -> Self {
        self.epoch_tuples = Some(tuples);
        self
    }

    /// Sets the copy-on-write snapshot segment size in keys.
    pub fn snapshot_segment_keys(mut self, keys: usize) -> Self {
        self.snapshot_segment_keys = keys;
        self
    }
}

/// State shared between the pipeline and every [`IngestHandle`].
struct Core<V> {
    senders: Vec<Sender<ShardMsg<V>>>,
    shard_shift: u32,
    num_keys: u32,
    batch_tuples: usize,
    epoch_tuples: Option<u64>,
    tuples_sent: AtomicU64,
    batches_sent: AtomicU64,
    epochs_sealed: AtomicU64,
    /// Serializes seal/shutdown broadcasts so every shard sees the same
    /// marker sequence (epoch alignment depends on it).
    seal_lock: Mutex<()>,
}

impl<V: Copy> Core<V> {
    fn seal(&self) -> u64 {
        let _guard = self.seal_lock.lock().expect("seal lock poisoned");
        // ordering: Relaxed — audited: every mutation happens under
        // `seal_lock`, which already orders sealers against each other, so
        // epoch numbers are assigned in the same order the Seal markers are
        // broadcast (the alignment invariant the accumulator needs). The
        // epoch *value* reaches the shards through the channel mutex, never
        // through this atomic, so no release/acquire pairing is required.
        let epoch = self.epochs_sealed.fetch_add(1, Ordering::Relaxed) + 1;
        for tx in &self.senders {
            // A closed channel means shutdown already drained everything.
            let _ = tx.send(ShardMsg::Seal(epoch));
        }
        epoch
    }
}

/// A cloneable producer handle. Coalesces tuples into per-shard batches
/// (the C-Buffer-line analogue) and ships them into the shard FIFOs,
/// blocking when a FIFO is full. Per-handle tuple order is preserved
/// end-to-end — the same per-producer guarantee as batch
/// [`bin_parallel`](cobra_pb::bin_parallel).
///
/// Dropping a handle flushes its partial batches.
pub struct IngestHandle<V> {
    core: Arc<Core<V>>,
    buffers: Vec<Vec<Tuple<V>>>,
}

impl<V: Copy> IngestHandle<V> {
    /// Routes one `(key, value)` update.
    ///
    /// Blocks when the destination shard's FIFO is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `key >= num_keys`.
    pub fn send(&mut self, key: u32, value: V) -> Result<(), PipelineClosed> {
        assert!(key < self.core.num_keys, "key {key} out of range");
        let shard = (key >> self.core.shard_shift) as usize;
        self.buffers[shard].push(Tuple { key, value });
        if self.buffers[shard].len() >= self.core.batch_tuples {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Ships every partially-filled batch buffer.
    pub fn flush(&mut self) -> Result<(), PipelineClosed> {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                self.flush_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Flushes this handle's buffers, then seals the current epoch across
    /// every shard: each worker ships its accumulated bins and the
    /// accumulator publishes a new snapshot once all shards' deltas for
    /// this epoch have been applied. Returns the sealed epoch number.
    ///
    /// Tuples still buffered in *other* handles land in a later epoch;
    /// flush or drop those handles first when exact epoch contents matter.
    pub fn seal_epoch(&mut self) -> Result<u64, PipelineClosed> {
        self.flush()?;
        Ok(self.core.seal())
    }

    /// Routes one `(key, value)` update without ever blocking.
    ///
    /// The tuple coalesces into the destination shard's batch buffer
    /// exactly like [`send`](Self::send); when the buffer reaches the
    /// batch size the batch ships via the FIFO's non-blocking `try_send`.
    /// A full FIFO refuses the whole call: on [`TryIngestError::Busy`]
    /// *this* tuple was not accepted (earlier buffered tuples stay
    /// buffered, nothing is duplicated) and the caller may retry it
    /// verbatim once the consumer has drained. This turns channel
    /// backpressure into an explicit refusal instead of parking the
    /// caller — an I/O worker, say — on a pipeline condvar.
    ///
    /// # Panics
    ///
    /// Panics if `key >= num_keys`.
    pub fn try_send(&mut self, key: u32, value: V) -> Result<(), TryIngestError> {
        assert!(key < self.core.num_keys, "key {key} out of range");
        let shard = (key >> self.core.shard_shift) as usize;
        self.buffers[shard].push(Tuple { key, value });
        if self.buffers[shard].len() >= self.core.batch_tuples {
            if let Err(e) = self.try_flush_shard(shard) {
                // The refused batch went back into the buffer; take this
                // call's tuple back out so Busy means "not accepted".
                self.buffers[shard].pop();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Attempts to ship every partially-filled batch buffer without
    /// blocking. Stops at the first shard whose FIFO is full; already
    /// shipped shards stay shipped, the refused shard's batch stays
    /// buffered for a later retry.
    pub fn try_flush(&mut self) -> Result<(), TryIngestError> {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                self.try_flush_shard(shard)?;
            }
        }
        Ok(())
    }

    fn flush_shard(&mut self, shard: usize) -> Result<(), PipelineClosed> {
        let batch = std::mem::take(&mut self.buffers[shard]);
        let n = batch.len() as u64;
        self.core.senders[shard]
            .send(ShardMsg::Batch(batch))
            .map_err(|_| PipelineClosed)?;
        self.note_batch_sent(n);
        Ok(())
    }

    fn try_flush_shard(&mut self, shard: usize) -> Result<(), TryIngestError> {
        let batch = std::mem::take(&mut self.buffers[shard]);
        let n = batch.len() as u64;
        match self.core.senders[shard].try_send(ShardMsg::Batch(batch)) {
            Ok(()) => {
                self.note_batch_sent(n);
                Ok(())
            }
            Err(e) => {
                // Refused: put the batch back so no tuple is lost; the
                // caller decides whether to retry or give up.
                let err = match e {
                    channel::TrySendError::Full(_) => TryIngestError::Busy,
                    channel::TrySendError::Disconnected(_) => TryIngestError::Closed,
                };
                if let ShardMsg::Batch(batch) = e.into_inner() {
                    self.buffers[shard] = batch;
                }
                Err(err)
            }
        }
    }

    fn note_batch_sent(&self, n: u64) {
        // ordering: Relaxed — stats counter, no payload published through it.
        self.core.batches_sent.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — audited: the auto-seal decision below needs
        // only the atomicity of fetch_add (its linearization guarantees
        // exactly one flusher observes each `epoch_tuples` threshold
        // crossing, so exactly one triggers the seal); the seal itself
        // synchronizes via `seal_lock` and the channel mutexes.
        let before = self.core.tuples_sent.fetch_add(n, Ordering::Relaxed);
        if let Some(every) = self.core.epoch_tuples {
            if (before + n) / every > before / every {
                self.core.seal();
            }
        }
    }
}

impl<V> Clone for IngestHandle<V> {
    fn clone(&self) -> Self {
        IngestHandle {
            core: Arc::clone(&self.core),
            buffers: (0..self.buffers.len()).map(|_| Vec::new()).collect(),
        }
    }
}

impl<V> Drop for IngestHandle<V> {
    fn drop(&mut self) {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                let batch = std::mem::take(&mut self.buffers[shard]);
                let n = batch.len() as u64;
                if self.core.senders[shard]
                    .send(ShardMsg::Batch(batch))
                    .is_ok()
                {
                    // ordering: Relaxed (×2) — stats counters; the batch
                    // was handed over by the channel mutex. No auto-seal
                    // check here: a dropping handle no longer seals.
                    self.core.batches_sent.fetch_add(1, Ordering::Relaxed);
                    self.core.tuples_sent.fetch_add(n, Ordering::Relaxed); // ordering: stats
                }
            }
        }
    }
}

/// A long-lived, sharded irregular-update ingestion pipeline.
///
/// `(key, value)` tuples stream in through [`IngestHandle`]s, route across
/// shard workers (each owning a [`Binner`] over a disjoint key sub-range),
/// and accumulate under the pipeline's [`Reducer`]. Epochs sealed with
/// [`seal_epoch`](Self::seal_epoch) (or the
/// [`epoch_tuples`](StreamConfig::epoch_tuples) auto-seal) publish
/// immutable [`EpochSnapshot`]s queryable at any time with
/// [`snapshot`](Self::snapshot) / [`get`](Self::get), while binning of the
/// next epoch continues concurrently.
pub struct IngestPipeline<R: Reducer> {
    core: Arc<Core<R::Value>>,
    workers: Vec<JoinHandle<()>>,
    accumulator: Option<JoinHandle<()>>,
    published: Arc<Mutex<Arc<EpochSnapshot<R::Acc>>>>,
    epochs_published: Arc<AtomicU64>,
    shard_counters: Vec<Arc<ShardCounters>>,
    channel_counters: Vec<Arc<ChannelCounters>>,
    shard_ranges: Vec<std::ops::Range<u32>>,
    /// Durable-mode committed-epoch counter (None = in-memory pipeline,
    /// where publishing *is* committing).
    epochs_committed: Option<Arc<AtomicU64>>,
    /// Durable-mode WAL counters (None = in-memory pipeline).
    wal_stats: Option<Arc<WalStats>>,
    /// Records replayed by the recovery that built this pipeline.
    wal_replayed: u64,
    started: Instant,
}

/// Everything a durable pipeline needs beyond [`StreamConfig`]: the
/// recovered/fresh WAL writers, the recovered state, and the epoch-commit
/// hook. Built by [`recover`](IngestPipeline::recover) in `durable.rs`.
pub(crate) struct DurableParts<R: Reducer> {
    /// One WAL per shard, opened at its replay-truncated end.
    pub(crate) shard_wals: Vec<ShardWal<R::Value>>,
    /// The shard binners, reused from the recovery replay.
    pub(crate) binners: Vec<Binner<R::Value>>,
    /// The committed epoch recovery resumed at (0 = fresh directory).
    pub(crate) initial_epoch: u64,
    /// Recovered state segments (identity for a fresh directory).
    pub(crate) initial_state: Vec<Arc<Vec<R::Acc>>>,
    /// Per-shard WAL replay boundaries at `initial_epoch`.
    pub(crate) initial_offsets: Vec<u64>,
    /// Commit-log + checkpoint hook, fired before every publish.
    pub(crate) epoch_sink: EpochSink<R::Acc>,
    /// Shared committed-epoch counter, advanced by the sink after each
    /// successful `EpochCommit` append (starts at `initial_epoch`).
    pub(crate) committed: Arc<AtomicU64>,
    /// Shared WAL counters across all shard logs and the commit log.
    pub(crate) wal_stats: Arc<WalStats>,
    /// Records replayed during recovery.
    pub(crate) replayed_records: u64,
}

/// The power-of-two shard geometry: returns `(shard_shift, ranges)` where
/// each shard owns `ranges[s]` and routing is `key >> shard_shift`.
/// Shared by pipeline construction and WAL recovery, which must agree on
/// the key partition for replay to hit the right binners. Public because
/// the cluster router reuses the same plan to map key ranges onto nodes —
/// locale routing at every tier uses one geometry.
pub fn shard_plan(num_keys: u32, shards: usize) -> (u32, Vec<std::ops::Range<u32>>) {
    // Power-of-two shard span, mirroring Binner's bin-range rounding:
    // routing is a shift, and the shard count is as close to the
    // request as the rounding allows (at most min(shards, num_keys)).
    let mut span = (num_keys as u64)
        .div_ceil(shards as u64)
        .next_power_of_two();
    if (num_keys as u64).div_ceil(span) < shards as u64 && span > 1 {
        span /= 2;
    }
    let shard_shift = span.trailing_zeros();
    let num_shards = (num_keys as u64).div_ceil(span) as usize;
    let ranges = (0..num_shards)
        .map(|s| {
            let lo = (s as u64 * span) as u32;
            let hi = ((s as u64 + 1) * span).min(num_keys as u64) as u32;
            lo..hi
        })
        .collect();
    (shard_shift, ranges)
}

impl<R: Reducer> IngestPipeline<R> {
    /// Builds the pipeline and starts its shard workers and accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys == 0` or any config knob is zero.
    pub fn new(num_keys: u32, reducer: R, cfg: StreamConfig) -> Self {
        Self::build(num_keys, reducer, cfg, None, None)
    }

    /// Like [`new`](Self::new), but registers a [`PublishHook`] that the
    /// accumulator calls with every epoch snapshot just before it becomes
    /// the published one — the integration point for retention windows
    /// and push-subscription fan-out (see `cobra-mvcc`).
    ///
    /// # Panics
    ///
    /// Panics on the same zero-value config knobs as [`new`](Self::new).
    pub fn with_publish_hook(
        num_keys: u32,
        reducer: R,
        cfg: StreamConfig,
        hook: PublishHook<R::Acc>,
    ) -> Self {
        Self::build(num_keys, reducer, cfg, None, Some(hook))
    }

    pub(crate) fn build(
        num_keys: u32,
        reducer: R,
        cfg: StreamConfig,
        durable: Option<DurableParts<R>>,
        publish_hook: Option<PublishHook<R::Acc>>,
    ) -> Self {
        assert!(num_keys > 0, "need at least one key");
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.channel_capacity > 0, "need channel capacity");
        assert!(cfg.batch_tuples > 0, "need a batch size");
        assert!(
            cfg.min_bins_per_shard > 0,
            "need at least one bin per shard"
        );
        if let Some(t) = cfg.epoch_tuples {
            assert!(t > 0, "epoch_tuples must be positive");
        }
        assert!(
            cfg.snapshot_segment_keys > 0 && cfg.snapshot_segment_keys <= u32::MAX as usize,
            "snapshot_segment_keys must be in 1..=u32::MAX"
        );
        let segment_keys = cfg.snapshot_segment_keys as u32;

        let (shard_shift, shard_ranges) = shard_plan(num_keys, cfg.shards);
        let num_shards = shard_ranges.len();
        let mut durable = durable;
        if let Some(d) = &durable {
            assert_eq!(
                d.shard_wals.len(),
                num_shards,
                "recovery shard plan drifted"
            );
            assert_eq!(d.binners.len(), num_shards, "recovery shard plan drifted");
            assert_eq!(
                d.initial_offsets.len(),
                num_shards,
                "recovery shard plan drifted"
            );
        }

        let reducer = Arc::new(reducer);
        let initial_epoch = durable.as_ref().map_or(0, |d| d.initial_epoch);
        let published = Arc::new(Mutex::new(Arc::new(match &durable {
            Some(d) => EpochSnapshot::new(
                d.initial_epoch,
                num_keys,
                segment_keys,
                d.initial_state.clone(),
            ),
            None => EpochSnapshot::from_values(
                0,
                segment_keys,
                vec![reducer.identity(); num_keys as usize],
            ),
        })));
        let epochs_published = Arc::new(AtomicU64::new(initial_epoch));

        // Accumulator inbox: sized so every shard can have a sealed epoch
        // and its drain delta in flight without blocking a worker.
        let (acc_tx, acc_rx) = channel::bounded::<AccMsg<R>>(2 * num_shards);

        let mut senders = Vec::with_capacity(num_shards);
        let mut receivers = Vec::with_capacity(num_shards);
        let mut channel_counters = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (tx, rx) = channel::bounded::<ShardMsg<R::Value>>(cfg.channel_capacity);
            channel_counters.push(tx.counters());
            senders.push(tx);
            receivers.push(rx);
        }

        let bases: Vec<u32> = shard_ranges.iter().map(|r| r.start).collect();

        let shard_counters: Vec<Arc<ShardCounters>> = (0..num_shards)
            .map(|_| Arc::new(ShardCounters::default()))
            .collect();

        let mut shard_wals: Vec<Option<ShardWal<R::Value>>> = match &mut durable {
            Some(d) => d.shard_wals.drain(..).map(Some).collect(),
            None => (0..num_shards).map(|_| None).collect(),
        };
        let mut binners: Vec<Option<Binner<R::Value>>> = match &mut durable {
            Some(d) => d.binners.drain(..).map(Some).collect(),
            None => (0..num_shards).map(|_| None).collect(),
        };

        let mut workers = Vec::with_capacity(num_shards);
        for (s, rx) in receivers.into_iter().enumerate() {
            let local_keys = shard_ranges[s].end - shard_ranges[s].start;
            let worker = ShardWorker::<R> {
                id: s,
                base: bases[s],
                // Durable mode reuses the binner the recovery replayed
                // through; otherwise build a fresh one.
                binner: binners[s]
                    .take()
                    .unwrap_or_else(|| Binner::new(local_keys, cfg.min_bins_per_shard)),
                reducer: Arc::clone(&reducer),
                counters: Arc::clone(&shard_counters[s]),
                acc_tx: acc_tx.clone(),
                delta_buf: if R::COMMUTATIVE {
                    vec![None; local_keys as usize]
                } else {
                    Vec::new()
                },
                wal: shard_wals[s].take(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("cobra-stream-shard-{s}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        drop(acc_tx);

        let (resume, epoch_sink, wal_stats, wal_replayed, epochs_committed) = match durable {
            Some(d) => (
                Some((d.initial_epoch, d.initial_state, d.initial_offsets)),
                Some(d.epoch_sink),
                Some(d.wal_stats),
                d.replayed_records,
                Some(d.committed),
            ),
            None => (None, None, None, 0, None),
        };

        let accumulator = {
            let acc = Accumulator::new(
                Arc::clone(&reducer),
                bases,
                num_keys,
                segment_keys,
                Arc::clone(&published),
                Arc::clone(&epochs_published),
                resume,
                epoch_sink,
                publish_hook,
            );
            std::thread::Builder::new()
                .name("cobra-stream-accumulate".into())
                .spawn(move || acc.run(acc_rx))
                .expect("spawn accumulator")
        };

        IngestPipeline {
            core: Arc::new(Core {
                senders,
                shard_shift,
                num_keys,
                batch_tuples: cfg.batch_tuples,
                epoch_tuples: cfg.epoch_tuples,
                tuples_sent: AtomicU64::new(0),
                batches_sent: AtomicU64::new(0),
                epochs_sealed: AtomicU64::new(initial_epoch),
                seal_lock: Mutex::new(()),
            }),
            workers,
            accumulator: Some(accumulator),
            published,
            epochs_published,
            shard_counters,
            channel_counters,
            shard_ranges,
            epochs_committed,
            wal_stats,
            wal_replayed,
            started: Instant::now(),
        }
    }

    /// A new producer handle.
    pub fn handle(&self) -> IngestHandle<R::Value> {
        IngestHandle {
            core: Arc::clone(&self.core),
            buffers: (0..self.core.senders.len()).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.core.senders.len()
    }

    /// The key domain.
    pub fn num_keys(&self) -> u32 {
        self.core.num_keys
    }

    /// The key sub-range shard `s` owns.
    pub fn shard_range(&self, s: usize) -> std::ops::Range<u32> {
        self.shard_ranges[s].clone()
    }

    /// Seals the current epoch (see [`IngestHandle::seal_epoch`], which
    /// also flushes that handle's coalescing buffers first). Returns the
    /// sealed epoch number.
    pub fn seal_epoch(&self) -> u64 {
        self.core.seal()
    }

    /// The latest published epoch snapshot (initially the all-identity
    /// epoch 0).
    pub fn snapshot(&self) -> Arc<EpochSnapshot<R::Acc>> {
        Arc::clone(&self.published.lock().expect("snapshot lock poisoned"))
    }

    /// The latest published value of `key`, cloned out of the snapshot.
    /// Prefer [`with_value`](Self::with_value) when a borrow suffices —
    /// for accumulators like `Append`'s `Vec` this clone is a deep copy.
    ///
    /// # Panics
    ///
    /// Panics if `key >= num_keys`.
    pub fn get(&self, key: u32) -> R::Acc {
        self.with_value(key, |v| v.expect("key out of range").clone())
    }

    /// Applies `f` to a *borrow* of the latest published value of `key`
    /// (`None` when `key` is out of range) — no clone, no deep copy; the
    /// snapshot's segment stays shared for the duration of the call.
    pub fn with_value<T>(&self, key: u32, f: impl FnOnce(Option<&R::Acc>) -> T) -> T {
        f(self.snapshot().try_get(key))
    }

    /// The latest published value of `key`, or `None` when `key` is out
    /// of range — the panic-free lookup a server must use on keys that
    /// arrive from untrusted clients.
    pub fn try_get(&self, key: u32) -> Option<R::Acc> {
        self.with_value(key, |v| v.cloned())
    }

    /// The epoch number of the latest published snapshot. One relaxed
    /// atomic load — cheap enough to call per request (cache keying),
    /// unlike [`snapshot`](Self::snapshot) which takes the publish lock.
    pub fn published_epoch(&self) -> u64 {
        // ordering: Relaxed — audited: epochs publish sequentially
        // (1, 2, …) so the publish counter equals the latest snapshot's
        // epoch number; readers that then fetch the snapshot synchronize
        // through the publish mutex, never through this atomic.
        self.epochs_published.load(Ordering::Relaxed)
    }

    /// The latest *durably committed* epoch: the highest epoch whose
    /// `EpochCommit` record reached the commit log. For a non-durable
    /// pipeline publishing is committing, so this equals
    /// [`published_epoch`](Self::published_epoch).
    ///
    /// Because the accumulator commits before it publishes,
    /// `committed_epoch() >= published_epoch()` always holds on a durable
    /// pipeline — this is the number a cluster node reports in the
    /// cross-node epoch-alignment protocol.
    pub fn committed_epoch(&self) -> u64 {
        match &self.epochs_committed {
            // ordering: Relaxed — audited: monotonic counter advanced by
            // the epoch sink before the corresponding snapshot publishes;
            // observers that need the epoch's *state* fetch the snapshot
            // through the publish mutex, never through this atomic.
            Some(c) => c.load(Ordering::Relaxed),
            None => self.published_epoch(),
        }
    }

    /// Point-in-time pipeline statistics.
    pub fn stats(&self) -> StreamStats {
        // ordering: Relaxed throughout — point-in-time statistics reads;
        // each counter is individually atomic and monotonic, and no decision
        // with correctness consequences is taken from the combination.
        StreamStats {
            tuples_sent: self.core.tuples_sent.load(Ordering::Relaxed), // ordering: stats
            batches_sent: self.core.batches_sent.load(Ordering::Relaxed), // ordering: stats
            epochs_sealed: self.core.epochs_sealed.load(Ordering::Relaxed), // ordering: stats
            epochs_published: self.epochs_published.load(Ordering::Relaxed), // ordering: stats
            epochs_committed: self.committed_epoch(),
            wal_bytes_appended: self.wal_stats.as_ref().map_or(0, |w| w.bytes_appended()),
            wal_fsyncs: self.wal_stats.as_ref().map_or(0, |w| w.fsyncs()),
            wal_segments: self.wal_stats.as_ref().map_or(0, |w| w.segments_created()),
            wal_replayed_records: self.wal_replayed,
            elapsed: self.started.elapsed(),
            shards: (0..self.num_shards())
                .map(|s| {
                    let c = &self.shard_counters[s];
                    ShardStats {
                        shard: s,
                        key_range: self.shard_ranges[s].clone(),
                        tuples_binned: c.tuples_binned.load(Ordering::Relaxed), // ordering: stats
                        epoch_flushes: c.epoch_flushes.load(Ordering::Relaxed), // ordering: stats
                        flushed_tuples: c.flushed_tuples.load(Ordering::Relaxed), // ordering: stats
                        max_flush_tuples: c.max_flush_tuples.load(Ordering::Relaxed), // ordering: stats
                        reduced_flushes: c.reduced_flushes.load(Ordering::Relaxed), // ordering: stats
                        bins_bytes: c.max_bins_bytes.load(Ordering::Relaxed), // ordering: stats
                        bin_segments: c.max_bin_segments.load(Ordering::Relaxed), // ordering: stats
                        bin_grow_events: c.bin_grow_events.load(Ordering::Relaxed), // ordering: stats
                        cbuf_flushes: cobra_bins::FrameFlushStats {
                            frames: c.cbuf_flush_frames.load(Ordering::Relaxed), // ordering: stats
                            tuples: c.cbuf_flush_tuples.load(Ordering::Relaxed), // ordering: stats
                            frame_capacity: c.cbuf_frame_capacity.load(Ordering::Relaxed) as u32, // ordering: stats
                        },
                        fusion: cobra_bins::FuseStats {
                            attempts: c.fusion_attempts.load(Ordering::Relaxed), // ordering: stats
                            hits: c.fusion_hits.load(Ordering::Relaxed),         // ordering: stats
                            flushes: c.fusion_flushes.load(Ordering::Relaxed),   // ordering: stats
                        },
                        channel: self.channel_counters[s].snapshot(),
                    }
                })
                .collect(),
        }
    }

    /// Graceful drain: broadcasts shutdown, waits for every shard to flush
    /// its remaining bins and for the accumulator to publish the final
    /// snapshot, then returns that snapshot and the final statistics.
    ///
    /// Flush or drop outstanding [`IngestHandle`]s first: tuples a handle
    /// sends after shutdown are rejected with [`PipelineClosed`], and
    /// tuples still sitting in an unflushed handle buffer are not part of
    /// the final snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn shutdown(mut self) -> (Arc<EpochSnapshot<R::Acc>>, StreamStats) {
        {
            let _guard = self.core.seal_lock.lock().expect("seal lock poisoned");
            // The drain is one final epoch: numbering it under the seal
            // lock keeps it consistent with any concurrent seal_epoch, so
            // durable shards can write a `Seal(drain_epoch)` marker and a
            // clean restart loses nothing.
            // ordering: Relaxed — audited: read and used under `seal_lock`,
            // which orders it against every seal's fetch_add.
            let drain_epoch = self.core.epochs_sealed.load(Ordering::Relaxed) + 1;
            for tx in &self.core.senders {
                let _ = tx.send(ShardMsg::Shutdown(drain_epoch));
            }
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker panicked");
        }
        if let Some(acc) = self.accumulator.take() {
            acc.join().expect("accumulator panicked");
        }
        let snapshot = self.snapshot();
        let stats = self.stats();
        (snapshot, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::{Append, Count, Latest};

    #[test]
    fn count_matches_direct_histogram() {
        let p = IngestPipeline::new(1 << 10, Count, StreamConfig::new().shards(4));
        let mut h = p.handle();
        let mut direct = vec![0u32; 1 << 10];
        for i in 0..50_000u64 {
            let k = ((i * 2654435761) % (1 << 10)) as u32;
            h.send(k, ()).unwrap();
            direct[k as usize] += 1;
        }
        drop(h);
        let (snap, stats) = p.shutdown();
        assert_eq!(snap.to_vec(), direct);
        assert_eq!(stats.tuples_sent, 50_000);
        assert_eq!(stats.epochs_published, 1, "final drain publishes once");
        assert_eq!(
            stats.shards.iter().map(|s| s.tuples_binned).sum::<u64>(),
            50_000
        );
        // Bin-memory accounting: every shard sealed a non-empty store.
        assert!(stats.total_bins_bytes() > 0);
        assert!(stats.total_bin_segments() > 0);
        assert!(stats.cbuf_occupancy() > 0.0 && stats.cbuf_occupancy() <= 1.0);
    }

    #[test]
    fn fusable_sum_coalesces_skewed_stream_and_counts_it() {
        use crate::reducer::Sum;
        // A heavily skewed stream: a handful of hot keys repeat inside
        // every C-Buffer frame, so the fused path must fold tuples away
        // and the stats must say so. Dyadic values keep f64 sums exact,
        // so fused == unfused bit-for-bit.
        let keys: Vec<u32> = (0..40_000u64).map(|i| ((i * i) % 7) as u32).collect();
        let p = IngestPipeline::new(1 << 10, Sum, StreamConfig::new().shards(2));
        let mut h = p.handle();
        let mut direct = vec![0f64; 1 << 10];
        for (i, &k) in keys.iter().enumerate() {
            let v = ((i % 16) as f64) * 0.25;
            h.send(k, v).unwrap();
            direct[k as usize] += v;
        }
        drop(h);
        let (snap, stats) = p.shutdown();
        assert!(
            stats.total_fusion_hits() > 0,
            "skewed keys must fuse in-frame"
        );
        assert!(stats.fused_ratio() > 0.0 && stats.fused_ratio() < 1.0);
        assert!(stats.total_fusion_flushes() > 0);
        // Fewer tuples crossed into bin memory than were sent.
        assert!(
            stats.shards.iter().map(|s| s.flushed_tuples).sum::<u64>() < stats.tuples_sent,
            "fusion must reduce bin traffic"
        );
        for (k, want) in direct.iter().enumerate() {
            assert_eq!(
                snap.get(k as u32).to_bits(),
                want.to_bits(),
                "key {k}: fused stream result must be bit-identical"
            );
        }
    }

    #[test]
    fn non_fusable_reducers_report_zero_fusion() {
        let p = IngestPipeline::new(64, Count, StreamConfig::new().shards(2));
        let mut h = p.handle();
        for i in 0..1000u32 {
            h.send(i % 4, ()).unwrap();
        }
        drop(h);
        let (_, stats) = p.shutdown();
        assert_eq!(stats.total_fusion_hits(), 0);
        assert_eq!(stats.fused_ratio(), 0.0);
    }

    #[test]
    fn append_preserves_per_producer_order() {
        let p = IngestPipeline::new(64, Append, StreamConfig::new().shards(4).batch_tuples(3));
        let mut h = p.handle();
        for i in 0..1000u32 {
            h.send(i % 64, i).unwrap();
        }
        drop(h);
        let (snap, _) = p.shutdown();
        for k in 0..64u32 {
            let expect: Vec<u32> = (0..1000).filter(|i| i % 64 == k).collect();
            assert_eq!(snap.get(k), &expect, "key {k}");
        }
    }

    #[test]
    fn epochs_publish_aligned_snapshots() {
        let p = IngestPipeline::new(256, Count, StreamConfig::new().shards(2));
        let mut h = p.handle();
        for k in 0..256u32 {
            h.send(k, ()).unwrap();
        }
        let e1 = h.seal_epoch().unwrap();
        assert_eq!(e1, 1);
        // Wait for the epoch-1 snapshot to surface.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let s = p.snapshot();
            if s.epoch() >= 1 {
                assert!(s.iter().all(|&c| c == 1));
                break;
            }
            assert!(Instant::now() < deadline, "epoch snapshot never published");
            std::thread::yield_now();
        }
        for k in 0..128u32 {
            h.send(k, ()).unwrap();
        }
        drop(h);
        let (snap, stats) = p.shutdown();
        assert_eq!(snap.epoch(), 2, "drain epoch follows the sealed epoch");
        assert!(stats.epochs_published >= 2);
        assert_eq!(*snap.get(5), 2);
        assert_eq!(*snap.get(200), 1);
    }

    #[test]
    fn auto_seal_by_tuple_count() {
        let p = IngestPipeline::new(
            128,
            Count,
            StreamConfig::new()
                .shards(2)
                .batch_tuples(8)
                .epoch_tuples(1000),
        );
        let mut h = p.handle();
        for i in 0..10_000u32 {
            h.send(i % 128, ()).unwrap();
        }
        drop(h);
        let (snap, stats) = p.shutdown();
        assert!(stats.epochs_sealed >= 9, "sealed {}", stats.epochs_sealed);
        // 10_000 = 78 * 128 + 16: keys below 16 get one extra tuple.
        for (k, &c) in snap.iter().enumerate() {
            assert_eq!(c, 78 + u32::from(k < 16), "key {k}");
        }
    }

    #[test]
    fn untouched_segments_are_shared_across_epochs() {
        // Keys 0..1024 live in segment 0, 1024..2048 in segment 1 (with
        // 512-key segments: 0..512 → seg 0, etc.). Touch only segment 0
        // between two seals: segment 0's Arc must differ across the two
        // snapshots while every untouched segment is pointer-identical.
        let p = IngestPipeline::new(
            4096,
            Count,
            StreamConfig::new().shards(2).snapshot_segment_keys(512),
        );
        let mut h = p.handle();
        for k in 0..4096u32 {
            h.send(k, ()).unwrap();
        }
        h.seal_epoch().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while p.published_epoch() < 1 {
            assert!(Instant::now() < deadline, "epoch 1 never published");
            std::thread::yield_now();
        }
        let s1 = p.snapshot();
        assert_eq!(s1.num_segments(), 8);

        // Epoch 2 touches keys 0..100 only — all in segment 0.
        for k in 0..100u32 {
            h.send(k, ()).unwrap();
        }
        h.seal_epoch().unwrap();
        while p.published_epoch() < 2 {
            assert!(Instant::now() < deadline, "epoch 2 never published");
            std::thread::yield_now();
        }
        let s2 = p.snapshot();
        assert!(
            !Arc::ptr_eq(s1.segment(0), s2.segment(0)),
            "touched segment must have been copied"
        );
        for seg in 1..8 {
            assert!(
                Arc::ptr_eq(s1.segment(seg), s2.segment(seg)),
                "untouched segment {seg} must be shared zero-copy"
            );
        }
        assert_eq!(*s2.get(5), 2);
        assert_eq!(*s2.get(2000), 1);
        drop(h);
        p.shutdown();
    }

    #[test]
    fn with_value_borrows_without_cloning() {
        let p = IngestPipeline::new(64, Append, StreamConfig::new().batch_tuples(1));
        let mut h = p.handle();
        for v in [7u32, 8, 9] {
            h.send(3, v).unwrap();
        }
        h.seal_epoch().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while p.published_epoch() < 1 {
            assert!(Instant::now() < deadline, "epoch never published");
            std::thread::yield_now();
        }
        let len = p.with_value(3, |v| v.map(Vec::len));
        assert_eq!(len, Some(3));
        assert!(p.with_value(64, |v| v.is_none()));
        assert_eq!(p.get(3), vec![7, 8, 9]);
        drop(h);
        p.shutdown();
    }

    #[test]
    fn latest_sees_final_write_per_key() {
        let p = IngestPipeline::new(32, Latest, StreamConfig::default());
        let mut h = p.handle();
        for round in 0..100u64 {
            for k in 0..32u32 {
                h.send(k, round * 100 + k as u64).unwrap();
            }
        }
        drop(h);
        let (snap, _) = p.shutdown();
        for k in 0..32u32 {
            assert_eq!(*snap.get(k), Some(9900 + k as u64));
        }
    }

    #[test]
    fn handles_reject_sends_after_shutdown() {
        let p = IngestPipeline::new(16, Count, StreamConfig::default());
        let mut h = p.handle();
        h.send(3, ()).unwrap();
        h.flush().unwrap();
        let (snap, _) = p.shutdown();
        assert_eq!(*snap.get(3), 1);
        let mut failed = false;
        for k in 0..16 {
            if h.send(k, ()).is_err() {
                failed = true;
                break;
            }
        }
        // Buffered sends may succeed locally; the eventual flush must fail.
        assert!(failed || h.flush().is_err());
    }

    #[test]
    fn single_key_domain() {
        let p = IngestPipeline::new(1, Count, StreamConfig::new().shards(8));
        assert_eq!(p.num_shards(), 1);
        let mut h = p.handle();
        for _ in 0..100 {
            h.send(0, ()).unwrap();
        }
        drop(h);
        let (snap, _) = p.shutdown();
        assert_eq!(*snap.get(0), 100);
    }

    #[test]
    fn shard_ranges_partition_the_domain() {
        let p = IngestPipeline::new(1000, Count, StreamConfig::new().shards(7));
        let mut covered = 0u32;
        for s in 0..p.num_shards() {
            let r = p.shard_range(s);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 1000);
        p.shutdown();
    }

    #[test]
    #[should_panic]
    fn out_of_range_key_panics() {
        let p = IngestPipeline::new(8, Count, StreamConfig::default());
        let mut h = p.handle();
        let _ = h.send(8, ());
    }

    /// A handle over a hand-built core whose single shard FIFO has no
    /// worker draining it: the channel fills deterministically, which a
    /// live pipeline never guarantees.
    fn unserviced_handle(
        capacity: usize,
        batch_tuples: usize,
    ) -> (IngestHandle<()>, crate::channel::Receiver<ShardMsg<()>>) {
        let (tx, rx) = channel::bounded::<ShardMsg<()>>(capacity);
        let core = Arc::new(Core {
            senders: vec![tx],
            shard_shift: 4, // one shard spanning keys 0..16
            num_keys: 16,
            batch_tuples,
            epoch_tuples: None,
            tuples_sent: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            epochs_sealed: AtomicU64::new(0),
            seal_lock: Mutex::new(()),
        });
        (
            IngestHandle {
                core,
                buffers: vec![Vec::new()],
            },
            rx,
        )
    }

    #[test]
    fn try_send_against_full_channel_is_busy_and_lossless() {
        let (mut h, rx) = unserviced_handle(1, 1);
        h.try_send(0, ()).unwrap(); // fills the 1-slot FIFO
        assert_eq!(h.try_send(1, ()), Err(TryIngestError::Busy));
        assert_eq!(h.try_send(2, ()), Err(TryIngestError::Busy));
        // Refused tuples were taken back out: nothing is buffered, and
        // exactly one tuple was accepted.
        assert!(h.buffers[0].is_empty());
        // ordering: Relaxed — test-side stats read.
        assert_eq!(h.core.tuples_sent.load(Ordering::Relaxed), 1);

        // Draining the FIFO makes the retry succeed, without duplicates.
        let Some(ShardMsg::Batch(b)) = rx.recv() else {
            panic!("expected the accepted batch")
        };
        assert_eq!(b.len(), 1);
        h.try_send(1, ()).unwrap();
        let Some(ShardMsg::Batch(b)) = rx.recv() else {
            panic!("expected the retried batch")
        };
        assert_eq!(b[0].key, 1);
    }

    #[test]
    fn try_send_below_batch_size_buffers_without_touching_channel() {
        let (mut h, rx) = unserviced_handle(1, 8);
        for k in 0..7 {
            h.try_send(k, ()).unwrap();
        }
        assert_eq!(h.buffers[0].len(), 7);
        h.try_flush().unwrap(); // fits: channel empty
        let Some(ShardMsg::Batch(b)) = rx.recv() else {
            panic!("expected flushed batch")
        };
        assert_eq!(b.len(), 7);
        // Channel full again → try_flush refuses but keeps the batch.
        for k in 0..8 {
            h.try_send(k, ()).unwrap();
        }
        assert!(h.buffers[0].is_empty(), "8th tuple shipped the batch");
        h.try_send(3, ()).unwrap();
        assert_eq!(h.try_flush(), Err(TryIngestError::Busy));
        assert_eq!(h.buffers[0].len(), 1, "refused batch stays buffered");
    }

    #[test]
    fn try_send_after_shutdown_is_closed() {
        let p = IngestPipeline::new(16, Count, StreamConfig::new().batch_tuples(1));
        let mut h = p.handle();
        h.try_send(3, ()).unwrap();
        let (snap, _) = p.shutdown();
        assert_eq!(*snap.get(3), 1);
        assert_eq!(h.try_send(4, ()), Err(TryIngestError::Closed));
    }

    #[test]
    fn try_get_is_total_over_any_key() {
        let p = IngestPipeline::new(8, Count, StreamConfig::new().batch_tuples(1));
        let mut h = p.handle();
        h.send(5, ()).unwrap();
        drop(h);
        let (snap, _) = p.shutdown();
        assert_eq!(snap.try_get(5), Some(&1));
        assert_eq!(snap.try_get(7), Some(&0));
        assert_eq!(snap.try_get(8), None);
        assert_eq!(snap.try_get(u32::MAX), None);
    }

    #[test]
    fn published_epoch_tracks_snapshot_epoch() {
        let p = IngestPipeline::new(64, Count, StreamConfig::new().shards(2));
        assert_eq!(p.published_epoch(), 0);
        let mut h = p.handle();
        h.send(1, ()).unwrap();
        h.seal_epoch().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while p.published_epoch() < 1 {
            assert!(Instant::now() < deadline, "epoch 1 never published");
            std::thread::yield_now();
        }
        assert_eq!(p.snapshot().epoch(), 1);
        assert_eq!(p.try_get(1), Some(1));
        assert_eq!(p.try_get(64), None);
        drop(h);
        p.shutdown();
    }
}
