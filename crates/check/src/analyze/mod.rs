//! cobra-analyze: cross-crate static concurrency & protocol analysis.
//!
//! A dependency-free pipeline (DESIGN.md §12): [`lexer`] turns each
//! workspace source file into tokens, [`items`] extracts the function
//! table, [`facts`] derives per-fn facts (calls, lock acquisitions with
//! held ranges, atomic sites with orderings, frame-tag mentions),
//! [`graph`] builds the name-based call graph and transitive locksets,
//! and the rules consume those:
//!
//! * **R5** ([`graph::r5_lock_order`]) — no cycles in the lock
//!   acquisition-order graph.
//! * **R6** ([`rules::r6_commit_before_publish`]) — a WAL commit-class
//!   call dominates every snapshot publish.
//! * **R7** ([`rules::r7_wire_exhaustiveness`]) — every wire opcode has
//!   encoder, decoder arm, server dispatch, client method, and a test.
//! * **R8** ([`rules::r8_atomics_pairing`]) — Release-class stores and
//!   Acquire-class loads pair up per field, workspace-wide.
//!
//! Findings can be suppressed only via `crates/check/analyze-allow.txt`
//! (`RULE | path-suffix | message-needle`); unused entries are
//! themselves findings (`stale-allow`), so suppressions cannot rot.
//! [`selftest`] seeds one mutation per rule and asserts it fires.

pub mod facts;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod selftest;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use items::{FnItem, SourceFile};

/// Crates included in the analyzed set. `check` itself is excluded: its
/// fixtures and lint tables quote orderings and lock calls as *data*.
const ANALYZED_CRATES: &[&str] = &[
    "pb", "bins", "core", "graph", "kernels", "sim", "stream", "wal", "serve", "cluster", "bench",
];

/// Relative path of the analyzer allowlist.
pub const ALLOW_FILE: &str = "crates/check/analyze-allow.txt";

/// Relative path of the JSON findings report.
pub const REPORT_FILE: &str = "target/analyze-report.json";

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`R5`…`R8`, or `stale-allow`).
    pub rule: &'static str,
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The raw text of every analyzed file. Selftests clone this, mutate
/// one file's text, and re-run the full pipeline — mutated text only
/// has to lex, not compile.
#[derive(Debug, Clone)]
pub struct SourceSet {
    /// `(workspace-relative path, file text)`, sorted by path.
    pub texts: Vec<(String, String)>,
}

impl SourceSet {
    /// Loads all `.rs` files of the analyzed crates under `root`
    /// (each crate's `src/` and `tests/`).
    pub fn load(root: &Path) -> io::Result<SourceSet> {
        let mut texts = Vec::new();
        for krate in ANALYZED_CRATES {
            for sub in ["src", "tests"] {
                let dir = root.join("crates").join(krate).join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut texts)?;
                }
            }
        }
        let root_str = root.to_string_lossy().into_owned();
        let mut out: Vec<(String, String)> = texts
            .into_iter()
            .map(|(p, t)| {
                let rel = p
                    .strip_prefix(&root_str)
                    .unwrap_or(&p)
                    .trim_start_matches(['/', '\\'])
                    .replace('\\', "/");
                (rel, t)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(SourceSet { texts: out })
    }

    /// Replaces `needle` with `replacement` in the file whose path ends
    /// with `path_suffix`. Panics if the file or needle is missing —
    /// a selftest mutation that no longer applies must fail loudly.
    pub fn mutate(&mut self, path_suffix: &str, needle: &str, replacement: &str) {
        let entry = self
            .texts
            .iter_mut()
            .find(|(p, _)| p.ends_with(path_suffix))
            .unwrap_or_else(|| panic!("mutation target {path_suffix} not in source set"));
        assert!(
            entry.1.contains(needle),
            "mutation needle not found in {path_suffix}: {needle}"
        );
        entry.1 = entry.1.replacen(needle, replacement, 1);
    }

    /// Appends `text` to the file whose path ends with `path_suffix`.
    pub fn append(&mut self, path_suffix: &str, text: &str) {
        let entry = self
            .texts
            .iter_mut()
            .find(|(p, _)| p.ends_with(path_suffix))
            .unwrap_or_else(|| panic!("append target {path_suffix} not in source set"));
        entry.1.push_str(text);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((
                path.to_string_lossy().into_owned(),
                fs::read_to_string(&path)?,
            ));
        }
    }
    Ok(())
}

/// The analyzed workspace: lexed files, function table, per-fn facts,
/// and the name → candidate-callee index.
pub struct Workspace {
    /// Lexed files.
    pub files: Vec<SourceFile>,
    /// All fns, in file order.
    pub fns: Vec<FnItem>,
    /// Facts for each fn (empty when it has no body).
    pub facts: Vec<facts::FnFacts>,
    /// Callee candidates: name → indices of non-test fns with bodies.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Lexes and parses a [`SourceSet`] into an analyzable workspace.
    pub fn build(set: &SourceSet) -> Workspace {
        let files: Vec<SourceFile> = set
            .texts
            .iter()
            .map(|(rel, text)| {
                let parts: Vec<&str> = rel.split('/').collect();
                SourceFile {
                    rel: rel.clone(),
                    krate: parts.get(1).unwrap_or(&"?").to_string(),
                    toks: lexer::lex(text),
                    is_test_file: parts.contains(&"tests"),
                }
            })
            .collect();
        let mut fns = Vec::new();
        for (fi, sf) in files.iter().enumerate() {
            fns.extend(items::parse_fns(sf, fi));
        }
        let facts: Vec<facts::FnFacts> = fns
            .iter()
            .map(|f| match f.body {
                Some((start, end)) => facts::extract(&files[f.file].toks, start, end, &f.params),
                None => facts::FnFacts::default(),
            })
            .collect();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.is_test && f.body.is_some() {
                by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        Workspace {
            files,
            fns,
            facts,
            by_name,
        }
    }
}

/// One parsed allowlist entry: `RULE | path-suffix | message-needle`.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Finding-file suffix to match.
    pub suffix: String,
    /// Substring of the finding message to match.
    pub needle: String,
    /// 1-based line in the allowlist file.
    pub line: u32,
    /// Set when the entry suppressed at least one finding.
    pub used: bool,
}

/// The analyzer allowlist.
#[derive(Debug, Default)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl AllowList {
    /// Parses allowlist text (missing file → empty list).
    pub fn parse(text: &str) -> AllowList {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|').map(str::trim);
            if let (Some(rule), Some(suffix), Some(needle)) =
                (parts.next(), parts.next(), parts.next())
            {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    suffix: suffix.to_string(),
                    needle: needle.to_string(),
                    line: (i + 1) as u32,
                    used: false,
                });
            }
        }
        AllowList { entries }
    }

    /// Drops findings matched by an entry (marking it used); returns
    /// the survivors.
    pub fn filter(&mut self, findings: Vec<Finding>) -> Vec<Finding> {
        findings
            .into_iter()
            .filter(|f| {
                for e in self.entries.iter_mut() {
                    if e.rule == f.rule
                        && f.file.ends_with(&e.suffix)
                        && f.message.contains(&e.needle)
                    {
                        e.used = true;
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Findings for entries that suppressed nothing this run.
    pub fn stale_findings(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| Finding {
                rule: "stale-allow",
                file: ALLOW_FILE.to_string(),
                line: e.line,
                message: format!(
                    "allowlist entry `{} | {} | {}` matched no finding — remove it",
                    e.rule, e.suffix, e.needle
                ),
            })
            .collect()
    }
}

/// Aggregate counters for the report.
#[derive(Debug, Default)]
pub struct Stats {
    /// Files analyzed.
    pub files: usize,
    /// Functions parsed.
    pub fns: usize,
    /// Call sites extracted.
    pub calls: usize,
    /// Lock acquisition sites.
    pub locks: usize,
    /// Atomic operation sites.
    pub atomics: usize,
    /// Lock acquisition-order edges.
    pub lock_edges: usize,
    /// Wall-clock for the full pass, milliseconds.
    pub elapsed_ms: u128,
}

/// Result of a full analysis pass.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (file, line,
    /// rule).
    pub findings: Vec<Finding>,
    /// Counters.
    pub stats: Stats,
    /// Allowlist entries that suppressed at least one finding.
    pub allow_used: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs R5–R8 over an already-built source set with the given
/// allowlist. This is the core used by both the CLI and the selftests.
pub fn analyze_set(set: &SourceSet, allow: &mut AllowList) -> Report {
    let start = Instant::now();
    let ws = Workspace::build(set);
    let mut findings = Vec::new();
    let (r5, lock_edges) = graph::r5_lock_order(&ws);
    findings.extend(r5);
    findings.extend(rules::r6_commit_before_publish(&ws));
    findings.extend(rules::r7_wire_exhaustiveness(&ws));
    findings.extend(rules::r8_atomics_pairing(&ws));
    let mut findings = allow.filter(findings);
    findings.extend(allow.stale_findings());
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    // A fn nested inside another fn's body is extracted for both; drop
    // the duplicated sites.
    findings.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
    });
    let stats = Stats {
        files: ws.files.len(),
        fns: ws.fns.len(),
        calls: ws.facts.iter().map(|f| f.calls.len()).sum(),
        locks: ws.facts.iter().map(|f| f.locks.len()).sum(),
        atomics: ws.facts.iter().map(|f| f.atomics.len()).sum(),
        lock_edges,
        elapsed_ms: start.elapsed().as_millis(),
    };
    let allow_used = allow.entries.iter().filter(|e| e.used).count();
    Report {
        findings,
        stats,
        allow_used,
    }
}

/// Loads the workspace sources and allowlist from `root` and runs the
/// full analysis.
pub fn run_analysis(root: &Path) -> io::Result<Report> {
    let set = SourceSet::load(root)?;
    let allow_text = fs::read_to_string(root.join(ALLOW_FILE)).unwrap_or_default();
    let mut allow = AllowList::parse(&allow_text);
    Ok(analyze_set(&set, &mut allow))
}

/// Escapes a string for JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report consumed by CI.
pub fn report_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"cobra-analyze\",\n");
    out.push_str("  \"rules\": [\"R5\", \"R6\", \"R7\", \"R8\", \"stale-allow\"],\n");
    out.push_str(&format!(
        "  \"stats\": {{\"files\": {}, \"functions\": {}, \"calls\": {}, \"locks\": {}, \
         \"atomics\": {}, \"lock_edges\": {}, \"elapsed_ms\": {}}},\n",
        report.stats.files,
        report.stats.fns,
        report.stats.calls,
        report.stats.locks,
        report.stats.atomics,
        report.stats.lock_edges,
        report.stats.elapsed_ms,
    ));
    out.push_str(&format!(
        "  \"allow_entries_used\": {},\n",
        report.allow_used
    ));
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the JSON report under `root` ([`REPORT_FILE`]), creating
/// `target/` if needed.
pub fn write_report(root: &Path, report: &Report) -> io::Result<()> {
    let path = root.join(REPORT_FILE);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, report_json(report))
}
