//! The client-side cluster tier: key-range routing, per-node batching,
//! and the coordinator-free epoch barrier.
//!
//! [`ClusterRouter`] is Propagation Blocking applied at the network
//! layer. A stream of `(key, value)` updates with no locality is *binned
//! by destination node* into per-node buffers (the C-Buffer-line
//! analogue, one line per backend) and flushed as full `UPDATE` frames —
//! so each backend receives dense, range-local batches instead of a
//! scatter of single tuples, exactly as the paper's binning phase turns
//! DRAM scatter into block-sequential traffic.
//!
//! Epoch alignment needs no coordinator process. The router is the only
//! sealer, so epochs advance in lockstep: [`seal_and_commit`] flushes
//! every buffer, fans `SEAL` out to every node (asserting the returned
//! epoch numbers agree), then holds the barrier — `WAIT_EPOCH(E)` on
//! every node — until each one reports `EpochCommit(E)`. Only then does
//! the call return, so a cluster snapshot taken for epoch `E` can never
//! observe a node that has not durably committed `E`.
//!
//! [`seal_and_commit`]: ClusterRouter::seal_and_commit

use crate::range::RangeMap;
use cobra_serve::protocol::MAX_SNAPSHOT_KEYS;
use cobra_serve::{ClientError, ServeClient, WireStats};
use std::fmt;
use std::time::{Duration, Instant};

/// Everything that can go wrong on a cluster call.
#[derive(Debug)]
pub enum ClusterError {
    /// A node failed (connection refused, dropped mid-call, or an error
    /// frame): the node index, its address, and the underlying failure.
    NodeDown {
        /// Index of the failed node in the router's address list.
        node: usize,
        /// The node's address, for the operator.
        addr: String,
        /// What the client call actually returned.
        source: ClientError,
    },
    /// `SEAL` fan-out returned different epoch numbers — some node was
    /// sealed by another writer, which the single-sealer protocol forbids.
    EpochMisaligned {
        /// Per-node epochs, indexed like the address list.
        epochs: Vec<u64>,
    },
    /// The key is outside the cluster's key space.
    KeyOutOfRange {
        /// The offending key.
        key: u32,
        /// The cluster's key-space size.
        num_keys: u32,
    },
    /// A node failed to publish the awaited epoch before the deadline.
    SnapshotTimeout {
        /// Node that never published.
        node: usize,
        /// The epoch that was awaited.
        epoch: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NodeDown { node, addr, source } => {
                write!(f, "node {node} ({addr}) is down: {source}")
            }
            ClusterError::EpochMisaligned { epochs } => {
                write!(f, "seal fan-out returned misaligned epochs {epochs:?}")
            }
            ClusterError::KeyOutOfRange { key, num_keys } => {
                write!(f, "key {key} >= cluster key space {num_keys}")
            }
            ClusterError::SnapshotTimeout { node, epoch } => {
                write!(f, "node {node} never published epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::NodeDown { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Tuning knobs of a [`ClusterRouter`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Tuples buffered per node before the router flushes the buffer as
    /// one `UPDATE` frame (the network C-Buffer line size).
    pub batch_tuples: usize,
    /// How long [`cluster_snapshot`](ClusterRouter::cluster_snapshot)
    /// waits for each node to publish the awaited epoch.
    pub snapshot_deadline: Duration,
    /// UPDATE frames each node connection keeps in flight before reading
    /// acknowledgements (see [`ServeClient::set_pipeline_window`]);
    /// 1 restores strict lockstep.
    pub pipeline_window: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            batch_tuples: 4096,
            snapshot_deadline: Duration::from_secs(30),
            pipeline_window: 8,
        }
    }
}

struct Node {
    addr: String,
    client: ServeClient,
    buf: Vec<(u32, u64)>,
}

/// One client's view of the cluster: a [`RangeMap`], one connection per
/// node, and per-node coalescing buffers.
///
/// A router is single-threaded by design (like [`ServeClient`]); load is
/// scaled by running one router per client thread, all sharing the same
/// address list. Exactly one of them may seal.
pub struct ClusterRouter {
    map: RangeMap,
    nodes: Vec<Node>,
    cfg: ClusterConfig,
}

impl ClusterRouter {
    /// Connects to every backend. Fails fast with a typed
    /// [`ClusterError::NodeDown`] naming the first unreachable node.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or `cfg.batch_tuples == 0`.
    pub fn connect(
        num_keys: u32,
        addrs: &[String],
        cfg: ClusterConfig,
    ) -> Result<ClusterRouter, ClusterError> {
        assert!(!addrs.is_empty(), "need at least one backend address");
        assert!(cfg.batch_tuples > 0, "need a non-zero batch size");
        let map = RangeMap::new(num_keys, addrs.len());
        assert!(
            map.len() == addrs.len(),
            "key space {num_keys} only supports {} nodes (got {} addresses); \
             shrink the cluster or grow the key space",
            map.len(),
            addrs.len()
        );
        let mut nodes = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let mut client =
                ServeClient::connect(addr.as_str()).map_err(|e| ClusterError::NodeDown {
                    node: i,
                    addr: addr.clone(),
                    source: ClientError::Io(e),
                })?;
            client.set_pipeline_window(cfg.pipeline_window);
            nodes.push(Node {
                addr: addr.clone(),
                client,
                buf: Vec::with_capacity(cfg.batch_tuples),
            });
        }
        Ok(ClusterRouter { map, nodes, cfg })
    }

    /// The key partition this router routes over.
    pub fn range_map(&self) -> &RangeMap {
        &self.map
    }

    fn node_err(&self, node: usize, source: ClientError) -> ClusterError {
        ClusterError::NodeDown {
            node,
            addr: self.nodes[node].addr.clone(),
            source,
        }
    }

    fn flush_node(&mut self, n: usize) -> Result<(), ClusterError> {
        if self.nodes[n].buf.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.nodes[n].buf);
        let res = self.nodes[n].client.update_all(&buf);
        self.nodes[n].buf = buf;
        self.nodes[n].buf.clear();
        res.map(|_| ()).map_err(|e| self.node_err(n, e))
    }

    /// Routes one update into its node's buffer, flushing the buffer as a
    /// full `UPDATE` frame when it reaches the configured batch size.
    pub fn send(&mut self, key: u32, value: u64) -> Result<(), ClusterError> {
        let Some(n) = self.map.node_of(key) else {
            return Err(ClusterError::KeyOutOfRange {
                key,
                num_keys: self.map.num_keys(),
            });
        };
        self.nodes[n].buf.push((key, value));
        if self.nodes[n].buf.len() >= self.cfg.batch_tuples {
            self.flush_node(n)?;
        }
        Ok(())
    }

    /// Flushes every node's buffer (partial frames included).
    pub fn flush(&mut self) -> Result<(), ClusterError> {
        for n in 0..self.nodes.len() {
            self.flush_node(n)?;
        }
        Ok(())
    }

    /// The cluster epoch barrier: flush everything, seal every node,
    /// check the epoch numbers agree, then wait until every node reports
    /// the epoch durably committed. Returns the aligned epoch.
    ///
    /// Only after this returns may a cluster snapshot for the epoch be
    /// assembled — that is the "snapshot publishes only after every
    /// node's `EpochCommit`" rule, enforced by construction.
    pub fn seal_and_commit(&mut self) -> Result<u64, ClusterError> {
        self.flush()?;
        let mut epochs = Vec::with_capacity(self.nodes.len());
        for n in 0..self.nodes.len() {
            let epoch = self.nodes[n]
                .client
                .seal()
                .map_err(|e| self.node_err(n, e))?;
            epochs.push(epoch);
        }
        let epoch = epochs[0];
        if epochs.iter().any(|&e| e != epoch) {
            return Err(ClusterError::EpochMisaligned { epochs });
        }
        // The barrier proper: every node must durably commit `epoch`
        // before any caller may treat the cluster epoch as complete.
        for n in 0..self.nodes.len() {
            self.nodes[n]
                .client
                .wait_epoch(epoch)
                .map_err(|e| self.node_err(n, e))?;
        }
        Ok(epoch)
    }

    /// Queries one key on the node owning it; returns `(epoch, value)`.
    pub fn query(&mut self, key: u32) -> Result<(u64, u64), ClusterError> {
        let Some(n) = self.map.node_of(key) else {
            return Err(ClusterError::KeyOutOfRange {
                key,
                num_keys: self.map.num_keys(),
            });
        };
        self.nodes[n]
            .client
            .query(key)
            .map_err(|e| self.node_err(n, e))
    }

    /// Assembles the cluster-wide snapshot for epoch `min_epoch`: each
    /// node's owned range is fetched (in `MAX_SNAPSHOT_KEYS` chunks) from
    /// a published snapshot at `>= min_epoch` and concatenated in key
    /// order. Call after [`seal_and_commit`](Self::seal_and_commit)
    /// returned `min_epoch` — commit precedes publish, so each node's
    /// snapshot arrives after a bounded wait.
    pub fn cluster_snapshot(&mut self, min_epoch: u64) -> Result<Vec<u64>, ClusterError> {
        let mut out = Vec::with_capacity(self.map.num_keys() as usize);
        for (n, range) in self.map.iter().collect::<Vec<_>>() {
            let deadline = Instant::now() + self.cfg.snapshot_deadline;
            let mut lo = range.start;
            while lo < range.end {
                let hi = range.end.min(lo + MAX_SNAPSHOT_KEYS);
                let (epoch, _, values) = self.nodes[n]
                    .client
                    .snapshot(0, lo, hi)
                    .map_err(|e| self.node_err(n, e))?;
                if epoch < min_epoch {
                    // Committed but not yet published: poll, bounded.
                    if Instant::now() >= deadline {
                        return Err(ClusterError::SnapshotTimeout {
                            node: n,
                            epoch: min_epoch,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                out.extend_from_slice(&values);
                lo = hi;
            }
        }
        Ok(out)
    }

    /// Fetches every node's server statistics, indexed like the address
    /// list (per-node throughput for the bench harness).
    pub fn stats(&mut self) -> Result<Vec<WireStats>, ClusterError> {
        let mut all = Vec::with_capacity(self.nodes.len());
        for n in 0..self.nodes.len() {
            let s = self.nodes[n]
                .client
                .stats()
                .map_err(|e| self.node_err(n, e))?;
            all.push(s);
        }
        Ok(all)
    }
}
