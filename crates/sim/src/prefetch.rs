//! L2 stream prefetcher.
//!
//! Detects ascending or descending unit-stride line streams within 4 KiB
//! pages (a classic Intel-style streamer) and, once a stream is confirmed,
//! fetches `degree` lines ahead of the demand stream. The paper's Table II
//! machine includes an L2 stream prefetcher; its presence is what makes
//! COBRA's L2 way reservation sensitive (Figure 13b).

use crate::config::PrefetchConfig;
use crate::LINE_BYTES;

const PAGE_LINES: u64 = 4096 / LINE_BYTES;
const TRACKERS: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Tracker {
    page: u64,
    last_line: u64,
    direction: i64,
    confidence: u32,
    lru: u64,
    valid: bool,
}

/// A per-core stream prefetcher observing the L2 demand stream.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    trackers: [Tracker; TRACKERS],
    clock: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given configuration.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StreamPrefetcher {
            cfg,
            trackers: [Tracker::default(); TRACKERS],
            clock: 0,
        }
    }

    /// Observes a demand line address and returns the lines to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.clock += 1;
        let page = line / PAGE_LINES;
        // Find the tracker for this page, or allocate the LRU one.
        let mut idx = None;
        let mut lru_idx = 0;
        let mut lru_min = u64::MAX;
        for (i, t) in self.trackers.iter().enumerate() {
            if t.valid && t.page == page {
                idx = Some(i);
                break;
            }
            if t.lru < lru_min {
                lru_min = t.lru;
                lru_idx = i;
            }
        }
        let Some(i) = idx else {
            self.trackers[lru_idx] = Tracker {
                page,
                last_line: line,
                direction: 0,
                confidence: 0,
                lru: self.clock,
                valid: true,
            };
            return Vec::new();
        };

        let t = &mut self.trackers[i];
        t.lru = self.clock;
        let delta = line as i64 - t.last_line as i64;
        if delta == 0 {
            return Vec::new();
        }
        let dir = delta.signum();
        if delta.abs() <= 2 && (t.direction == dir || t.direction == 0) {
            t.direction = dir;
            t.confidence += 1;
        } else {
            t.direction = dir;
            t.confidence = 1;
        }
        t.last_line = line;
        if t.confidence < self.cfg.confirm {
            return Vec::new();
        }
        let degree = self.cfg.degree as i64;
        let mut out = Vec::with_capacity(degree as usize);
        for k in 1..=degree {
            let target = line as i64 + dir * k;
            if target < 0 {
                break;
            }
            let target = target as u64;
            // Do not cross the page boundary (physical prefetchers cannot).
            if target / PAGE_LINES != page {
                break;
            }
            out.push(target);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            degree: 4,
            confirm: 3,
        }
    }

    #[test]
    fn ascending_stream_confirms_and_prefetches() {
        let mut p = StreamPrefetcher::new(cfg());
        let base = 1000 * PAGE_LINES;
        assert!(p.observe(base).is_empty());
        assert!(p.observe(base + 1).is_empty());
        assert!(p.observe(base + 2).is_empty());
        let pf = p.observe(base + 3);
        assert_eq!(pf, vec![base + 4, base + 5, base + 6, base + 7]);
    }

    #[test]
    fn descending_stream_supported() {
        let mut p = StreamPrefetcher::new(cfg());
        let base = 2000 * PAGE_LINES + 32;
        for k in 0..3 {
            p.observe(base - k);
        }
        let pf = p.observe(base - 3);
        assert_eq!(pf, vec![base - 4, base - 5, base - 6, base - 7]);
    }

    #[test]
    fn random_accesses_never_confirm() {
        let mut p = StreamPrefetcher::new(cfg());
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert!(p.observe(x % (1 << 30)).is_empty());
        }
    }

    #[test]
    fn does_not_cross_page_boundary() {
        let mut p = StreamPrefetcher::new(cfg());
        let page_start = 3000 * PAGE_LINES;
        let near_end = page_start + PAGE_LINES - 2;
        for k in 0..3 {
            p.observe(near_end - 3 + k);
        }
        let pf = p.observe(near_end + 1); // last line of page
        assert!(
            pf.is_empty(),
            "must not prefetch into the next page: {pf:?}"
        );
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            enabled: false,
            degree: 4,
            confirm: 1,
        });
        for k in 0..10 {
            assert!(p.observe(k).is_empty());
        }
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        let mut p = StreamPrefetcher::new(cfg());
        let a = 5000 * PAGE_LINES;
        let b = 6000 * PAGE_LINES;
        for k in 0..3 {
            p.observe(a + k);
            p.observe(b + k);
        }
        assert!(!p.observe(a + 3).is_empty());
        assert!(!p.observe(b + 3).is_empty());
    }
}
