//! Machine configuration (the paper's Table II).

use crate::cache::Replacement;

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Load-to-use latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (crate::LINE_BYTES * self.ways as u64)
    }

    /// Number of cache lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / crate::LINE_BYTES
    }
}

/// Stream-prefetcher parameters (L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Enables the prefetcher.
    pub enabled: bool,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: u32,
    /// Sequential accesses to the same page required to confirm a stream.
    pub confirm: u32,
}

/// Full single-core machine configuration.
///
/// The paper simulates 16 cores; binning in PB/COBRA is embarrassingly
/// parallel with per-thread bins and a per-core LLC NUCA slice, so this
/// reproduction simulates one representative core whose LLC capacity is the
/// paper's per-core 2 MB slice (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// LLC (local NUCA bank).
    pub llc: CacheConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Cycles one 64 B transfer occupies the core's share of the DRAM
    /// channel (the bandwidth bound that makes irregular workloads
    /// memory-bound; ~10 GB/s per core at 2.66 GHz).
    pub dram_line_occupancy: u64,
    /// Issue width of the out-of-order core.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Load-queue entries.
    pub load_queue: u32,
    /// Miss-status-holding registers: maximum demand misses to DRAM in
    /// flight (bounds the memory-level parallelism of irregular loads).
    pub mshrs: u32,
    /// Store-queue entries.
    pub store_queue: u32,
    /// Pipeline refill penalty of a branch misprediction, in cycles.
    pub mispredict_penalty: u64,
    /// L2 stream prefetcher.
    pub prefetch: PrefetchConfig,
}

impl MachineConfig {
    /// The configuration of the paper's Table II (per core at 2.66 GHz):
    /// 4-wide OoO, 128-entry ROB, 48-entry LQ, 512-entry SQ;
    /// 32 KB 8-way Bit-PLRU L1 (3 cyc), 256 KB 8-way Bit-PLRU L2 (8 cyc),
    /// 2 MB/core 16-way DRRIP LLC (21 cyc), 80 ns DRAM (~213 cycles).
    pub fn hpca22() -> Self {
        MachineConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                replacement: Replacement::BitPlru,
                latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                replacement: Replacement::BitPlru,
                latency: 8,
            },
            llc: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                replacement: Replacement::Drrip,
                latency: 21,
            },
            dram_latency: 213, // 80 ns * 2.66 GHz
            dram_line_occupancy: 8,
            issue_width: 4,
            rob: 128,
            load_queue: 48,
            mshrs: 10,
            store_queue: 512,
            mispredict_penalty: 15,
            prefetch: PrefetchConfig {
                enabled: true,
                degree: 4,
                confirm: 3,
            },
        }
    }

    /// A miniature hierarchy for fast unit tests: 1 KB/2-way L1,
    /// 4 KB/4-way L2, 16 KB/4-way LLC. Same relative latencies as
    /// [`hpca22`](Self::hpca22).
    pub fn tiny() -> Self {
        let mut c = Self::hpca22();
        c.l1 = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            replacement: Replacement::BitPlru,
            latency: 3,
        };
        c.l2 = CacheConfig {
            size_bytes: 4096,
            ways: 4,
            replacement: Replacement::BitPlru,
            latency: 8,
        };
        c.llc = CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            replacement: Replacement::Drrip,
            latency: 21,
        };
        c.prefetch.enabled = false;
        c
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::hpca22()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca22_geometry() {
        let c = MachineConfig::hpca22();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.sets(), 2048);
        assert_eq!(c.llc.lines(), 32768);
    }

    #[test]
    fn tiny_geometry() {
        let c = MachineConfig::tiny();
        assert_eq!(c.l1.sets(), 8);
        assert_eq!(c.l2.sets(), 16);
        assert_eq!(c.llc.sets(), 64);
    }
}
