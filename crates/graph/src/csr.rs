//! Compressed Sparse Row graph representation (Figure 1 of the paper).

use crate::edgelist::{Edge, EdgeList};
use crate::prefix::exclusive_sum;

/// A directed graph in CSR form: an Offsets Array (`offsets`, length V+1)
/// indexing into a Neighbors Array (`neighbors`, length E), edges grouped by
/// source.
///
/// The transpose of a CSR is the CSC of the same graph; build it with
/// [`Csr::transpose`] (pull-style kernels such as the PB versions of
/// Pagerank, Radii and SpMV operate on the transpose, per Section VI).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from raw arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not monotonically non-decreasing, does not
    /// start at 0, or its last entry differs from `neighbors.len()`.
    pub fn from_raw(offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        assert_eq!(*offsets.last().expect("nonempty") as usize, neighbors.len());
        Csr { offsets, neighbors }
    }

    /// Builds a CSR from an edge list (the reference, serial
    /// Edgelist→CSR conversion; the instrumented/optimized versions live in
    /// `cobra-kernels`).
    pub fn from_edgelist(el: &EdgeList) -> Self {
        let degrees = el.degrees();
        let offsets = exclusive_sum(&degrees);
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; el.num_edges()];
        for e in el.iter() {
            let slot = cursor[e.src as usize];
            neighbors[slot as usize] = e.dst;
            cursor[e.src as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of vertex `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The neighbors of vertex `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The Offsets Array (length `num_vertices() + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The Neighbors Array (length `num_edges()`).
    pub fn neighbors_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// The transpose graph (edge directions reversed); a CSC view of `self`.
    pub fn transpose(&self) -> Csr {
        let v = self.num_vertices();
        let mut degrees = vec![0u32; v];
        for &d in &self.neighbors {
            degrees[d as usize] += 1;
        }
        let offsets = exclusive_sum(&degrees);
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; self.num_edges()];
        for s in 0..v as u32 {
            for &d in self.neighbors(s) {
                let slot = cursor[d as usize];
                neighbors[slot as usize] = s;
                cursor[d as usize] += 1;
            }
        }
        Csr { offsets, neighbors }
    }

    /// All edges, in CSR (source-major) order.
    pub fn to_edgelist(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges());
        for s in 0..self.num_vertices() as u32 {
            for &d in self.neighbors(s) {
                edges.push(Edge::new(s, d));
            }
        }
        EdgeList::new(self.num_vertices() as u32, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(3, 0),
                Edge::new(1, 2),
            ],
        )
    }

    #[test]
    fn from_edgelist_groups_by_source() {
        let g = Csr::from_edgelist(&sample());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = Csr::from_edgelist(&sample());
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[3]);
        // Double transpose restores the edge multiset.
        let tt = t.transpose();
        let mut a = g.to_edgelist().edges().to_vec();
        let mut b = tt.to_edgelist().edges().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_through_edgelist() {
        let g = Csr::from_edgelist(&sample());
        let el = g.to_edgelist();
        let g2 = Csr::from_edgelist(&el);
        assert_eq!(g, g2);
    }

    #[test]
    fn from_raw_validates() {
        let g = Csr::from_raw(vec![0, 2, 2], vec![1, 0]);
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_unsorted_offsets() {
        Csr::from_raw(vec![0, 3, 2], vec![1, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_length_mismatch() {
        Csr::from_raw(vec![0, 1], vec![1, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edgelist(&EdgeList::new(3, vec![]));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
    }
}
