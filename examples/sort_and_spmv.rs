//! Beyond graphs: Propagation Blocking for integer sorting and sparse
//! linear algebra — the paper's generality claim in action.
//!
//! Shows (1) a real, native counting sort built on the `cobra-pb` library
//! racing `sort_unstable`, and (2) the SpMV and Transpose kernels under
//! simulation, including the non-commutative Transpose.
//!
//! Run with: `cargo run --release --example sort_and_spmv`

use cobra_repro::graph::{gen, matrix};
use cobra_repro::kernels::{run, Input, KernelId, ModeSpec};
use cobra_repro::pb::bin_parallel;
use cobra_repro::sim::MachineConfig;
use std::time::Instant;

fn pb_counting_sort(keys: &[u32], max_key: u32, threads: usize) -> Vec<u32> {
    // Bin keys by range in parallel, then counting-sort each bin into its
    // contiguous output segment — every structure is cache-sized.
    let tb = bin_parallel(keys.len(), max_key, 2048, threads, |i| (keys[i], ()));
    let range = 1usize << tb.bin_shift();
    let mut out = Vec::with_capacity(keys.len());
    for b in 0..tb.num_bins() {
        let base = (b * range) as u32;
        let mut local = vec![0u32; range];
        for (bin_keys, _) in tb.bin_slices(b) {
            for &k in bin_keys {
                local[(k - base) as usize] += 1;
            }
        }
        for (off, &c) in local.iter().enumerate() {
            for _ in 0..c {
                out.push(base + off as u32);
            }
        }
    }
    out
}

fn main() {
    // ---- 1. Native integer sort (real wall-clock, real memory). ----
    let n = 4_000_000;
    let max_key = 1 << 24;
    let keys = gen::random_keys(n, max_key, 7);

    let t0 = Instant::now();
    let mut std_sorted = keys.clone();
    std_sorted.sort_unstable();
    let t_std = t0.elapsed();

    let t1 = Instant::now();
    let pb_sorted = pb_counting_sort(&keys, max_key, 2);
    let t_pb = t1.elapsed();

    assert_eq!(std_sorted, pb_sorted);
    println!("sorted {n} keys (domain 2^24): sort_unstable {t_std:?} vs PB counting sort {t_pb:?}");

    // ---- 2. Sparse linear algebra under simulation. ----
    let m = matrix::random_uniform(1 << 17, 8, 99);
    println!("\nmatrix: {}x{}, {} nonzeros", m.rows(), m.cols(), m.nnz());
    let input = Input::matrix(m);
    let machine = MachineConfig::hpca22();
    for kernel in [KernelId::Spmv, KernelId::Transpose] {
        let baseline = run(kernel, &input, &ModeSpec::Baseline, &machine);
        let cobra = run(kernel, &input, &ModeSpec::cobra_default(), &machine);
        assert_eq!(baseline.digest, cobra.digest);
        println!(
            "{:>9} ({}): COBRA speedup {:.2}x over baseline (L1 miss {:.1}% -> {:.1}%)",
            kernel.name(),
            if kernel.is_commutative() {
                "commutative"
            } else {
                "non-commutative"
            },
            baseline.metrics.cycles() as f64 / cobra.metrics.cycles() as f64,
            100.0 * baseline.metrics.result.mem.l1d.miss_rate(),
            100.0 * cobra.metrics.result.mem.l1d.miss_rate(),
        );
    }
    println!("\nnon-commutative kernels work under COBRA because per-bin tuple order");
    println!("equals program order through the FIFO C-Buffer hierarchy ✓");
}
