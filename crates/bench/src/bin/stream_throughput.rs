//! Streaming-pipeline throughput: ingest rate and producer-stall fraction
//! across the shard-count × channel-capacity grid — the native-execution
//! counterpart of Figure 13a's eviction-buffer sweep, run on the real
//! `cobra-stream` pipeline instead of the DES.

#![forbid(unsafe_code)]

use cobra_bench::inputs::zipf_keys;
use cobra_bench::{Scale, Table};
use cobra_graph::gen;
use cobra_kernels::streaming;
use cobra_stream::{IngestPipeline, StreamConfig, Sum};

fn main() {
    let scale = Scale::from_args();
    let (rmat_scale, edge_factor) = match scale {
        Scale::Quick => (14, 8),
        Scale::Standard => (18, 16),
        Scale::Full => (20, 16),
    };
    let el = gen::rmat(rmat_scale, edge_factor, 42);
    println!(
        "streaming degree-count: {} edges over {} vertices, 4 producers",
        el.num_edges(),
        el.num_vertices()
    );

    let mut t = Table::new(
        "Streaming ingest: Mtuples/s (producer stall fraction)",
        &[
            "shards",
            "cap 1",
            "cap 16",
            "cap 64",
            "cap 1024",
            "bins_bytes",
            "bin_segments",
            "cbuf_occupancy",
        ],
    );
    for shards in [1usize, 2, 4, 8] {
        let mut row = vec![shards.to_string()];
        // Bin-memory footprint from the deepest-FIFO run (the memory
        // high-water mark is a property of the shard/bin geometry, not of
        // the channel bound).
        let mut mem = (0u64, 0u64, 0.0f64);
        for cap in [1usize, 16, 64, 1024] {
            let cfg = StreamConfig::new()
                .shards(shards)
                .channel_capacity(cap)
                .epoch_tuples(el.num_edges().max(8) as u64 / 8);
            let (_, stats) = streaming::degree_count(&el, 4, cfg);
            row.push(format!(
                "{:.1} ({:.0}%)",
                stats.tuples_per_sec() / 1e6,
                100.0 * stats.stall_fraction()
            ));
            mem = (
                stats.total_bins_bytes(),
                stats.total_bin_segments(),
                stats.cbuf_occupancy(),
            );
        }
        row.push(mem.0.to_string());
        row.push(mem.1.to_string());
        row.push(format!("{:.2}", mem.2));
        t.row(row);
        eprintln!("[done] {shards} shards");
    }
    t.print();
    t.write_csv("stream_throughput");
    println!(
        "\nShape check (paper Fig. 13a analogue): stall fraction falls as the\n\
         FIFO bound grows, and deep FIFOs recover the unthrottled ingest rate."
    );

    // Frame-fusion section: the same pipeline under a fusable Sum reducer,
    // fed uniform vs Zipf-skewed keys. Hot-key repeats meeting inside a
    // C-Buffer frame coalesce before they reach bin memory, so the skewed
    // stream's fused ratio must come out clearly above the uniform one.
    let num_keys = 1u32 << 12;
    let n = (el.num_edges() / 4).max(1 << 14);
    let mut f = Table::new(
        "Fused Sum ingest: zipf vs uniform keys",
        &["keys", "Mtuples/s", "fusion_hits", "fused_ratio"],
    );
    let mut ratios = Vec::new();
    for (name, alpha) in [("uniform", None), ("zipf a=1.2", Some(1.2))] {
        let keys = match alpha {
            Some(a) => zipf_keys(n, num_keys, a, 0x715F),
            None => gen::random_keys(n, num_keys, 0x715F),
        };
        let pipeline = IngestPipeline::new(num_keys, Sum, StreamConfig::new().shards(4));
        let mut handle = pipeline.handle();
        for &k in &keys {
            handle.send(k, 0.25).expect("pipeline alive");
        }
        drop(handle);
        let (_, stats) = pipeline.shutdown();
        ratios.push(stats.fused_ratio());
        f.row(vec![
            name.to_owned(),
            format!("{:.1}", stats.tuples_per_sec() / 1e6),
            stats.total_fusion_hits().to_string(),
            format!("{:.4}", stats.fused_ratio()),
        ]);
    }
    f.print();
    assert!(
        ratios[1] > ratios[0],
        "zipf keys must out-fuse uniform keys: {ratios:?}"
    );
    println!("\nShape check: skewed keys fuse more often than uniform keys.");
}
