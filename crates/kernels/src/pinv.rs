//! PINV (SuiteSparse `cs_pinv`): inverse of a row/column permutation —
//! `pinv[p[i]] = i`. A pure irregular scatter with unique keys; updates
//! cannot be coalesced (every key occurs exactly once), so commutativity
//! optimizations are inapplicable while PB still helps locality.

use crate::common::pc;
use cobra_core::{count_bin_tuples, PbBackend};
use cobra_sim::engine::Engine;

/// Tuple size: 8 B (`p[i]` key + `i` payload).
pub const TUPLE_BYTES: u32 = 8;

/// Native reference.
pub fn reference(p: &[u32]) -> Vec<u32> {
    let mut pinv = vec![0u32; p.len()];
    for (i, &pi) in p.iter().enumerate() {
        pinv[pi as usize] = i as u32;
    }
    pinv
}

/// Baseline: direct scatter.
pub fn baseline<E: Engine>(e: &mut E, p: &[u32]) -> Vec<u32> {
    let n = p.len();
    let p_addr = e.alloc("pinv_p", n.max(1) as u64 * 4);
    let out_addr = e.alloc("pinv_out", n.max(1) as u64 * 4);
    let mut pinv = vec![0u32; n];
    e.phase(cobra_core::exec::phases::MAIN);
    for (i, &pi) in p.iter().enumerate() {
        e.load(p_addr.addr(4, i as u64), 4);
        e.alu(1);
        e.store(out_addr.addr(4, pi as u64), 4);
        e.branch(pc::STREAM_LOOP, i + 1 < n);
        pinv[pi as usize] = i as u32;
    }
    pinv
}

/// PB execution.
pub fn pb<B: PbBackend<u32>>(b: &mut B, p: &[u32]) -> Vec<u32> {
    let n = p.len();
    let p_addr = b.engine().alloc("pinv_p", n.max(1) as u64 * 4);
    let out_addr = b.engine().alloc("pinv_out", n.max(1) as u64 * 4);
    let mut pinv = vec![0u32; n];

    b.engine().phase(cobra_core::exec::phases::INIT);
    let shift = b.bin_shift();
    let nbins = b.num_bins();
    let counts = count_bin_tuples(b.engine(), n, shift, nbins, |e, i| {
        e.load(p_addr.addr(4, i as u64), 4);
        p[i]
    });
    b.presize(&counts);

    b.engine().phase(cobra_core::exec::phases::BINNING);
    for (i, &pi) in p.iter().enumerate() {
        b.engine().load(p_addr.addr(4, i as u64), 4);
        b.engine().alu(1);
        b.engine().branch(pc::STREAM_LOOP, i + 1 < n);
        b.insert(pi, i as u32);
    }
    let storage = b.flush_and_take();

    b.engine().phase(cobra_core::exec::phases::ACCUMULATE);
    let e = b.engine();
    let mut iter = storage.iter().peekable();
    while let Some((addr, key, &i)) = iter.next() {
        e.load(addr, TUPLE_BYTES);
        e.store(out_addr.addr(4, key as u64), 4);
        e.branch(pc::STREAM_LOOP, iter.peek().is_some());
        pinv[key as usize] = i;
    }
    pinv
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::{CobraMachine, SwPb};
    use cobra_graph::gen;
    use cobra_sim::engine::NullEngine;
    use cobra_sim::MachineConfig;

    #[test]
    fn inverse_composes_to_identity() {
        let p = gen::random_permutation(10_000, 3);
        let pinv = reference(&p);
        for i in 0..p.len() {
            assert_eq!(pinv[p[i] as usize] as usize, i);
        }
    }

    #[test]
    fn baseline_matches_reference() {
        let p = gen::random_permutation(10_000, 5);
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &p), reference(&p));
    }

    #[test]
    fn pb_matches_reference() {
        let p = gen::random_permutation(10_000, 5);
        let mut b = SwPb::<_, u32>::new(
            NullEngine::new(),
            p.len() as u32,
            32,
            TUPLE_BYTES,
            p.len() as u64,
        );
        assert_eq!(pb(&mut b, &p), reference(&p));
    }

    #[test]
    fn cobra_matches_reference() {
        let p = gen::random_permutation(10_000, 5);
        let mut m = CobraMachine::<u32>::with_defaults(
            MachineConfig::hpca22(),
            p.len() as u32,
            TUPLE_BYTES,
            p.len() as u64,
        );
        assert_eq!(pb(&mut m, &p), reference(&p));
    }

    #[test]
    fn identity_permutation() {
        let p: Vec<u32> = (0..100).collect();
        let mut e = NullEngine::new();
        assert_eq!(baseline(&mut e, &p), p);
    }
}
