//! The scaled input suite standing in for the paper's Table III.
//!
//! Each generator matches a degree-distribution *class* of the original
//! inputs (see DESIGN.md §2): power-law web/social graphs (DBP, TWIT,
//! UK2005), Graph500 Kronecker (KRON), uniform random (URND), bounded-degree
//! road networks (EURO), an extra-skew class (HBUBL), HPCG-like stencils and
//! SuiteSparse-style simulation/optimization matrices.

use cobra_graph::{gen, matrix, SplitMix64};
use cobra_kernels::Input;

/// Input sizing: `Quick` for CI, `Standard` for the default evaluation,
/// `Full` for paper-regime runs (slow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs (seconds for the whole suite).
    Quick,
    /// Default: large enough to exhibit the bin-count tension of Figure 4.
    Standard,
    /// 4 M-vertex graphs / 16 M-entry matrices (tens of minutes).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments
    /// (default: `Standard`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Standard
        }
    }

    /// log2 of the graph vertex count.
    pub fn graph_scale(&self) -> u32 {
        match self {
            Scale::Quick => 15,
            Scale::Standard => 21,
            Scale::Full => 22,
        }
    }

    /// Edges per vertex for generated graphs.
    pub fn degree(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Standard => 4,
            Scale::Full => 8,
        }
    }

    /// Matrix dimension.
    pub fn matrix_rows(&self) -> u32 {
        match self {
            Scale::Quick => 1 << 14,
            Scale::Standard => 1 << 21,
            Scale::Full => 1 << 22,
        }
    }

    /// Number of keys for Integer Sort.
    pub fn sort_keys(&self) -> usize {
        match self {
            Scale::Quick => 1 << 16,
            Scale::Standard => 1 << 23,
            Scale::Full => 1 << 24,
        }
    }

    /// Key domain for Integer Sort.
    pub fn sort_max_key(&self) -> u32 {
        match self {
            Scale::Quick => 1 << 15,
            Scale::Standard => 1 << 22,
            Scale::Full => 1 << 23,
        }
    }

    /// SpGEMM matrix dimension. Deliberately smaller than
    /// [`matrix_rows`](Self::matrix_rows): the expansion phase emits
    /// `nnz(A) × avg-row(B)` partial products, so cost grows with the
    /// *square* of the per-row density.
    pub fn spgemm_rows(&self) -> u32 {
        match self {
            Scale::Quick => 1 << 10,
            Scale::Standard => 1 << 13,
            Scale::Full => 1 << 14,
        }
    }
}

/// A seeded Zipf-skewed key stream: `n` keys over `0..max_key` where key
/// rank `r` is drawn with probability ∝ `1/(r+1)^alpha`. The hot-key
/// shape every fusion benchmark needs — back-to-back repeats of the hot
/// keys are what a C-Buffer frame can coalesce.
pub fn zipf_keys(n: usize, max_key: u32, alpha: f64, seed: u64) -> Vec<u32> {
    assert!(alpha > 0.0, "alpha must be positive");
    let max_key = max_key.max(1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(max_key as usize);
    let mut acc = 0.0f64;
    for r in 0..max_key {
        acc += 1.0 / (r as f64 + 1.0).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let x = rng.f64_range(0.0, total);
            (cdf.partition_point(|&p| p < x) as u32).min(max_key - 1)
        })
        .collect()
}

/// An input with its Table III-style name.
#[derive(Debug, Clone)]
pub struct NamedInput {
    /// Suite name (primed to mark the scaled stand-in, e.g. `DBP'`).
    pub name: String,
    /// The input itself.
    pub input: Input,
}

fn named(name: &str, input: Input) -> NamedInput {
    NamedInput {
        name: name.to_owned(),
        input,
    }
}

/// The graph suite (power-law, Kronecker, uniform, road, extra-skew).
pub fn graph_suite(scale: Scale) -> Vec<NamedInput> {
    let s = scale.graph_scale();
    let d = scale.degree();
    let n = 1u32 << s;
    let side = (n as f64).sqrt() as u32;
    vec![
        named("DBP'", Input::graph(gen::rmat(s, d, 0xDB9))),
        named("KRON'", Input::graph(gen::kronecker(s, d, 0x7201))),
        named(
            "URND'",
            Input::graph(gen::uniform_random(n, n as usize * d, 0x0123)),
        ),
        named("EURO'", Input::graph(gen::road_mesh(side, 0xE0E0))),
        named(
            "HBUBL'",
            Input::graph(gen::zipf(n, n as usize * d, 1.05, 0x4B)),
        ),
    ]
}

/// A reduced graph suite for the more expensive sweeps.
pub fn graph_suite_small(scale: Scale) -> Vec<NamedInput> {
    graph_suite(scale).into_iter().take(3).collect()
}

/// The matrix suite (stencil / banded / random / power-law classes).
pub fn matrix_suite(scale: Scale) -> Vec<NamedInput> {
    let n = scale.matrix_rows();
    // Stencil grid sized to roughly n rows.
    let side = (n as f64).cbrt() as u32;
    vec![
        named(
            "HPCG'",
            Input::matrix(matrix::stencil27(side, side, side.max(2))),
        ),
        named("RAND'", Input::matrix(matrix::random_uniform(n, 4, 0x11AC))),
        named("BAND'", Input::matrix(matrix::banded(n, 2, 0xBA9D))),
        named(
            "PLAW'",
            Input::matrix(matrix::powerlaw_rows(n, 4, 1.1, 0x91AF)),
        ),
    ]
}

/// The SpGEMM suite: dyadic-valued operands (bitwise-comparable products)
/// in a uniform-column and a Zipf-hot-column class — the latter is where
/// frame fusion pays.
pub fn spgemm_suite(scale: Scale) -> Vec<NamedInput> {
    let n = scale.spgemm_rows();
    vec![
        named(
            "GEMM-U'",
            Input::matrix(cobra_spgemm::dyadic_matrix(n, n, 8, 0x96E1)),
        ),
        named(
            "GEMM-Z'",
            Input::matrix(cobra_spgemm::dyadic_skewed_matrix(n, n, 8, 1.2, 0x96E2)),
        ),
    ]
}

/// The sort input (random keys, as in the NAS IS setup).
pub fn sort_input(scale: Scale) -> NamedInput {
    named(
        "RKEYS'",
        Input::keys(
            gen::random_keys(scale.sort_keys(), scale.sort_max_key(), 0x5027),
            scale.sort_max_key(),
        ),
    )
}

/// The default inputs each kernel is evaluated on, mirroring Section VI's
/// pairing of kernels to input kinds.
pub fn kernel_inputs(kernel: cobra_kernels::KernelId, scale: Scale) -> Vec<NamedInput> {
    use cobra_kernels::KernelId::*;
    match kernel {
        DegreeCount | NeighborPopulate | Pagerank | Radii => graph_suite(scale),
        IntSort => vec![sort_input(scale)],
        Spmv | Transpose | Pinv | SymPerm => matrix_suite(scale),
        SpGemm => spgemm_suite(scale),
    }
}

/// One representative input per kernel (for the single-input sweeps).
pub fn representative_input(kernel: cobra_kernels::KernelId, scale: Scale) -> NamedInput {
    use cobra_kernels::KernelId::*;
    match kernel {
        DegreeCount | NeighborPopulate | Pagerank | Radii => graph_suite(scale)
            .into_iter()
            .next()
            .expect("nonempty suite"),
        IntSort => sort_input(scale),
        Spmv | Transpose | Pinv | SymPerm => matrix_suite(scale)
            .into_iter()
            .nth(1)
            .expect("nonempty suite"),
        // The skewed class: the one whose fusion behaviour is interesting.
        SpGemm => spgemm_suite(scale)
            .into_iter()
            .nth(1)
            .expect("nonempty suite"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_generates() {
        let gs = graph_suite(Scale::Quick);
        assert_eq!(gs.len(), 5);
        for g in &gs {
            assert!(
                g.input.num_updates(cobra_kernels::KernelId::DegreeCount) > 0,
                "{}",
                g.name
            );
        }
        let ms = matrix_suite(Scale::Quick);
        assert_eq!(ms.len(), 4);
        let s = sort_input(Scale::Quick);
        assert!(s.input.num_updates(cobra_kernels::KernelId::IntSort) > 0);
    }

    #[test]
    fn zipf_keys_are_skewed_and_bounded() {
        let keys = zipf_keys(20_000, 1 << 10, 1.2, 7);
        assert_eq!(keys.len(), 20_000);
        assert!(keys.iter().all(|&k| k < 1 << 10));
        let mut counts = vec![0u32; 1 << 10];
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let avg = keys.len() as u32 / (1 << 10);
        assert!(max > 10 * avg.max(1), "max {max} avg {avg}");
    }

    #[test]
    fn spgemm_suite_generates() {
        let suite = spgemm_suite(Scale::Quick);
        assert_eq!(suite.len(), 2);
        for s in &suite {
            assert!(s.input.num_updates(cobra_kernels::KernelId::SpGemm) > 0);
        }
    }

    #[test]
    fn every_kernel_has_inputs() {
        for &k in &cobra_kernels::ALL_KERNELS {
            assert!(!kernel_inputs(k, Scale::Quick).is_empty());
            let _ = representative_input(k, Scale::Quick);
        }
    }
}
