//! Epoch checkpoints: a point-in-time serialization of the accumulator's
//! copy-on-write segments plus the manifest needed to resume the WAL.
//!
//! A checkpoint file (`ckpt-<epoch>.bin`) holds, in order: a magic tag, the
//! manifest (`epoch`, key geometry, per-shard WAL resume offsets), the
//! value segments (each a `u32` count followed by that many `u64` words),
//! and a trailing CRC32 over everything before it. The file is written to
//! a temp name and published with an atomic rename, so a crash mid-write
//! can only ever leave a stale temp file — never a half-valid checkpoint.
//!
//! Because the accumulator's segments are immutable `Arc<Vec<A>>`s, the
//! writer serializes straight out of the shared segment storage: no deep
//! copy of the state precedes the write.

use crate::crc32::Crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a COBRA checkpoint, version 1.
const MAGIC: &[u8; 8] = b"CBRWCKP1";

/// Upper bound on checkpoint file size accepted by the reader (manifest
/// plus `num_keys` words plus slack); larger files are corrupt.
const MAX_FILE_BYTES: u64 = 1 << 32;

/// Values that can live in a WAL record or checkpoint: anything with a
/// lossless round-trip through a 64-bit word. Implemented for the
/// reducer value/accumulator types the durable pipeline supports.
pub trait WalValue: Copy + Send + Sync + 'static {
    /// Widens the value to a word.
    fn to_word(self) -> u64;
    /// Recovers the value from a word.
    fn from_word(word: u64) -> Self;
}

impl WalValue for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(word: u64) -> Self {
        word
    }
}

impl WalValue for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32
    }
}

impl WalValue for i64 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as i64
    }
}

impl WalValue for f64 {
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    fn from_word(word: u64) -> Self {
        f64::from_bits(word)
    }
}

impl WalValue for () {
    fn to_word(self) -> u64 {
        0
    }
    fn from_word(_: u64) -> Self {}
}

/// The checkpoint manifest: which epoch the segments reflect and where
/// each shard's WAL replay should resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// The committed epoch this checkpoint captures.
    pub epoch: u64,
    /// Total key count (must match the pipeline's).
    pub num_keys: u32,
    /// Keys per segment (must match the pipeline's snapshot geometry).
    pub segment_keys: u32,
    /// Per-shard logical WAL offsets: replay each shard's log from its
    /// offset to roll forward past this checkpoint.
    pub shard_offsets: Vec<u64>,
}

/// A decoded checkpoint: manifest plus the value segments, already in the
/// `Arc`'d form the accumulator uses.
#[derive(Debug, Clone)]
pub struct Checkpoint<A> {
    /// The manifest.
    pub meta: CheckpointMeta,
    /// Value segments, in key order.
    pub segments: Vec<Arc<Vec<A>>>,
}

fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{epoch:020}.bin"))
}

/// Checkpoint files in `dir` as `(epoch, path)`, sorted by epoch
/// descending (newest first). Non-checkpoint files are ignored.
pub(crate) fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".bin"))
        else {
            continue;
        };
        let Ok(epoch) = stem.parse::<u64>() else {
            continue;
        };
        out.push((epoch, entry.path()));
    }
    out.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(out)
}

/// Serializes `meta` + `segments` to `ckpt-<epoch>.bin` in `dir` via a
/// temp file and atomic rename. Returns the checkpoint size in bytes.
pub fn write_checkpoint<A: WalValue>(
    dir: &Path,
    meta: &CheckpointMeta,
    segments: &[Arc<Vec<A>>],
) -> io::Result<u64> {
    fs::create_dir_all(dir)?;
    let mut body = Vec::with_capacity(
        MAGIC.len()
            + 8
            + 4
            + 4
            + 4
            + 4
            + meta.shard_offsets.len() * 8
            + segments.iter().map(|s| 4 + s.len() * 8).sum::<usize>()
            + 4,
    );
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&meta.epoch.to_le_bytes());
    body.extend_from_slice(&meta.num_keys.to_le_bytes());
    body.extend_from_slice(&meta.segment_keys.to_le_bytes());
    body.extend_from_slice(&(meta.shard_offsets.len() as u32).to_le_bytes());
    body.extend_from_slice(&(segments.len() as u32).to_le_bytes());
    for &off in &meta.shard_offsets {
        body.extend_from_slice(&off.to_le_bytes());
    }
    for seg in segments {
        body.extend_from_slice(&(seg.len() as u32).to_le_bytes());
        for &v in seg.iter() {
            body.extend_from_slice(&v.to_word().to_le_bytes());
        }
    }
    let mut crc = Crc32::new();
    crc.update(&body);
    body.extend_from_slice(&crc.finish().to_le_bytes());

    let path = checkpoint_path(dir, meta.epoch);
    let tmp = dir.join(format!("ckpt-{:020}.tmp", meta.epoch));
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    // Best-effort directory sync so the rename itself is durable; some
    // filesystems refuse fsync on directories, which is not fatal.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(body.len() as u64)
}

/// Total little-endian cursor over a checkpoint body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {msg}"))
}

/// Reads and validates one checkpoint file. Any structural problem —
/// short file, bad magic, CRC mismatch, inconsistent geometry — is
/// reported as [`io::ErrorKind::InvalidData`].
pub fn read_checkpoint<A: WalValue>(path: &Path) -> io::Result<Checkpoint<A>> {
    let mut f = File::open(path)?;
    let file_len = f.metadata()?.len();
    if file_len > MAX_FILE_BYTES {
        return Err(invalid("file too large"));
    }
    let mut bytes = Vec::with_capacity(file_len as usize);
    f.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(invalid("short file"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let mut crc = Crc32::new();
    crc.update(body);
    if crc.finish() != want_crc {
        return Err(invalid("crc mismatch"));
    }
    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.take(MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(invalid("bad magic"));
    }
    let epoch = cur.u64().ok_or_else(|| invalid("short manifest"))?;
    let num_keys = cur.u32().ok_or_else(|| invalid("short manifest"))?;
    let segment_keys = cur.u32().ok_or_else(|| invalid("short manifest"))?;
    let num_shards = cur.u32().ok_or_else(|| invalid("short manifest"))? as usize;
    let num_segments = cur.u32().ok_or_else(|| invalid("short manifest"))? as usize;
    if segment_keys == 0 {
        return Err(invalid("zero segment size"));
    }
    if num_segments != (num_keys as usize).div_ceil(segment_keys as usize) {
        return Err(invalid("segment count does not match key geometry"));
    }
    let mut shard_offsets = Vec::with_capacity(num_shards.min(1 << 16));
    for _ in 0..num_shards {
        shard_offsets.push(cur.u64().ok_or_else(|| invalid("short shard offsets"))?);
    }
    let mut segments = Vec::with_capacity(num_segments);
    let mut keys_seen = 0usize;
    for i in 0..num_segments {
        let count = cur.u32().ok_or_else(|| invalid("short segment header"))? as usize;
        if count > segment_keys as usize {
            return Err(invalid("segment larger than geometry allows"));
        }
        let mut seg = Vec::with_capacity(count);
        for _ in 0..count {
            seg.push(A::from_word(
                cur.u64().ok_or_else(|| invalid("short segment body"))?,
            ));
        }
        keys_seen += count;
        // All segments but the last must be full.
        if i + 1 < num_segments && count != segment_keys as usize {
            return Err(invalid("non-final segment not full"));
        }
        segments.push(Arc::new(seg));
    }
    if keys_seen != num_keys as usize {
        return Err(invalid("key count does not match segments"));
    }
    if cur.pos != body.len() {
        return Err(invalid("trailing garbage"));
    }
    Ok(Checkpoint {
        meta: CheckpointMeta {
            epoch,
            num_keys,
            segment_keys,
            shard_offsets,
        },
        segments,
    })
}

/// Loads the newest valid checkpoint with epoch ≤ `max_epoch`, skipping
/// over corrupt or unreadable files (recovery must survive a bad
/// checkpoint by falling back to an older one or to empty state).
pub fn latest_checkpoint<A: WalValue>(
    dir: &Path,
    max_epoch: u64,
) -> io::Result<Option<Checkpoint<A>>> {
    for (epoch, path) in list_checkpoints(dir)? {
        if epoch > max_epoch {
            continue;
        }
        if let Ok(ckpt) = read_checkpoint::<A>(&path) {
            if ckpt.meta.epoch == epoch {
                return Ok(Some(ckpt));
            }
        }
    }
    Ok(None)
}

/// Removes all but the newest `keep` checkpoint files (and any stale temp
/// files from interrupted writes).
pub fn gc_checkpoints(dir: &Path, keep: usize) -> io::Result<()> {
    for (_, path) in list_checkpoints(dir)?.into_iter().skip(keep) {
        fs::remove_file(&path)?;
    }
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("ckpt-") && name.ends_with(".tmp") {
                fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — test-only unique-directory counter.
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cobra-wal-ckpt-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (CheckpointMeta, Vec<Arc<Vec<u64>>>) {
        let meta = CheckpointMeta {
            epoch: 7,
            num_keys: 10,
            segment_keys: 4,
            shard_offsets: vec![96, 120],
        };
        let segments = vec![
            Arc::new(vec![1u64, 2, 3, 4]),
            Arc::new(vec![5, 6, 7, 8]),
            Arc::new(vec![9, 10]),
        ];
        (meta, segments)
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let (meta, segments) = sample();
        let bytes = write_checkpoint(&dir, &meta, &segments).expect("write");
        assert!(bytes > 0);
        let ckpt = latest_checkpoint::<u64>(&dir, u64::MAX)
            .expect("read")
            .expect("some");
        assert_eq!(ckpt.meta, meta);
        assert_eq!(ckpt.segments.len(), 3);
        for (a, b) in ckpt.segments.iter().zip(&segments) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_skipped_in_favor_of_older() {
        let dir = temp_dir("skip");
        let (meta, segments) = sample();
        write_checkpoint(&dir, &meta, &segments).expect("write old");
        let newer = CheckpointMeta {
            epoch: 9,
            ..meta.clone()
        };
        write_checkpoint(&dir, &newer, &segments).expect("write new");
        // Flip a byte in the newer checkpoint.
        let path = checkpoint_path(&dir, 9);
        let mut bytes = fs::read(&path).expect("read");
        bytes[20] ^= 0xFF;
        fs::write(&path, bytes).expect("corrupt");
        let ckpt = latest_checkpoint::<u64>(&dir, u64::MAX)
            .expect("read")
            .expect("some");
        assert_eq!(ckpt.meta.epoch, 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_epoch_bound_ignores_newer_checkpoints() {
        let dir = temp_dir("bound");
        let (meta, segments) = sample();
        write_checkpoint(&dir, &meta, &segments).expect("write 7");
        let newer = CheckpointMeta {
            epoch: 12,
            ..meta.clone()
        };
        write_checkpoint(&dir, &newer, &segments).expect("write 12");
        let ckpt = latest_checkpoint::<u64>(&dir, 10)
            .expect("read")
            .expect("some");
        assert_eq!(ckpt.meta.epoch, 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_the_newest() {
        let dir = temp_dir("gc");
        let (meta, segments) = sample();
        for epoch in [1u64, 2, 3, 4] {
            let m = CheckpointMeta {
                epoch,
                ..meta.clone()
            };
            write_checkpoint(&dir, &m, &segments).expect("write");
        }
        gc_checkpoints(&dir, 2).expect("gc");
        let left = list_checkpoints(&dir).expect("list");
        assert_eq!(left.iter().map(|&(e, _)| e).collect::<Vec<_>>(), [4, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_invalid_data() {
        let dir = temp_dir("trunc");
        let (meta, segments) = sample();
        write_checkpoint(&dir, &meta, &segments).expect("write");
        let path = checkpoint_path(&dir, 7);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = read_checkpoint::<u64>(&path).expect_err("should fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(latest_checkpoint::<u64>(&dir, u64::MAX)
            .expect("scan")
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
