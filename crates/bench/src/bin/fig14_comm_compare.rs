//! Figure 14: commutative-update specializations — DRAM bin traffic (14a)
//! and L1 misses (14b) under PB-SW, idealized PHI, COBRA and COBRA-COMM,
//! for the commutative Degree-Count kernel.
//!
//! PHI and COBRA-COMM coalesce updates (inapplicable to the
//! non-commutative kernels); COBRA alone is the general optimization.

#![forbid(unsafe_code)]

use cobra_bench::{inputs, report, Scale, Table};
use cobra_bins::BinStore;
use cobra_core::comm::{run_cobra_comm, run_phi, run_plain};
use cobra_core::{BinHierarchy, ReservedWays};
use cobra_kernels::{bin_choices, Input, KernelId};
use cobra_sim::engine::{Engine, SimEngine};
use cobra_sim::MachineConfig;

/// Simulates an Accumulate pass over coalesced `(key, count)` bins with the
/// given bin granularity: streaming tuple reads + one irregular
/// read-modify-write per tuple. Returns L1 misses.
fn accumulate_l1_misses(
    machine: &MachineConfig,
    bins: &[Vec<(u32, u32)>],
    num_keys: u32,
    tuple_bytes: u32,
) -> u64 {
    let mut e = SimEngine::new(*machine);
    let data = e.alloc("acc_data", num_keys.max(1) as u64 * 4);
    let region: u64 = bins.iter().map(|b| b.len() as u64).sum::<u64>() * tuple_bytes as u64;
    let tuples = e.alloc("acc_tuples", region.max(1));
    let mut cursor = 0u64;
    for bin in bins {
        for &(k, _) in bin {
            e.load(tuples.addr(tuple_bytes as u64, cursor), tuple_bytes);
            cursor += 1;
            e.load(data.addr(4, k as u64), 4);
            e.alu(1);
            e.store(data.addr(4, k as u64), 4);
        }
    }
    e.finish().mem.l1d.misses
}

/// All coalesced tuples of a columnar bin store, in bin order.
fn store_tuples(bins: &BinStore<u32>) -> impl Iterator<Item = (u32, u32)> + '_ {
    (0..bins.num_bins()).flat_map(|b| bins.iter_bin(b).map(|(&k, &c)| (k, c)))
}

/// Regroups coalesced tuples into `1 << shift`-key bins (PHI inherits
/// PB-SW's compromise bin count; COBRA-COMM uses the LLC bin count).
fn regroup(
    tuples: impl Iterator<Item = (u32, u32)>,
    shift: u32,
    num_keys: u32,
) -> Vec<Vec<(u32, u32)>> {
    let n = ((num_keys as u64).div_ceil(1 << shift)) as usize;
    let mut out = vec![Vec::new(); n.max(1)];
    for (k, c) in tuples {
        out[(k >> shift) as usize].push((k, c));
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let machine = MachineConfig::hpca22();
    report::print_machine(&machine);
    let kernel = KernelId::DegreeCount;

    let mut ta = Table::new(
        "Figure 14a: DRAM bin-write traffic, normalized to PB-SW",
        &[
            "input",
            "PB-SW",
            "PHI",
            "COBRA",
            "COBRA-COMM",
            "PHI LLC-coalesce share",
        ],
    );
    let mut tb = Table::new(
        "Figure 14b: Accumulate L1 misses, normalized to PB-SW",
        &["input", "PB-SW", "PHI", "COBRA", "COBRA-COMM"],
    );

    for ni in inputs::graph_suite(scale) {
        let Input::Graph { el, .. } = &ni.input else {
            continue;
        };
        let keys = el.num_vertices();
        let hier = BinHierarchy::bininit(
            &machine,
            ReservedWays::paper_default(&machine),
            keys,
            kernel.tuple_bytes(),
        );
        let stream = || el.edges().iter().map(|e| e.dst);
        let plain = run_plain(stream(), &hier);
        let (phi, phi_bins) = run_phi(stream(), &hier);
        let (comm, comm_bins) = run_cobra_comm(stream(), &hier);
        let norm = |x: u64| report::f2(x as f64 / plain.dram_write_bytes.max(1) as f64);
        ta.row(vec![
            ni.name.clone(),
            "1.00".into(),
            norm(phi.dram_write_bytes),
            norm(plain.dram_write_bytes), // COBRA does not coalesce
            norm(comm.dram_write_bytes),
            report::pct(phi.llc_coalesce_share()),
        ]);

        // 14b: L1 misses of the Accumulate pass. PB-SW and PHI replay with
        // the software compromise bin count; COBRA and COBRA-COMM with the
        // optimal (LLC) bin count.
        let choices = bin_choices(kernel, &ni.input, &machine);
        let sw_shift = ((keys as u64).div_ceil(choices.sweet_spot as u64))
            .next_power_of_two()
            .trailing_zeros();
        let opt_shift = hier.memory_bin_shift();
        let uncoalesced = || stream().map(|k| (k, 1));
        let pb_sw_m = accumulate_l1_misses(
            &machine,
            &regroup(uncoalesced(), sw_shift, keys),
            keys,
            kernel.tuple_bytes(),
        );
        let phi_m = accumulate_l1_misses(
            &machine,
            &regroup(store_tuples(&phi_bins), sw_shift, keys),
            keys,
            kernel.tuple_bytes(),
        );
        let cobra_m = accumulate_l1_misses(
            &machine,
            &regroup(uncoalesced(), opt_shift, keys),
            keys,
            kernel.tuple_bytes(),
        );
        let comm_m = accumulate_l1_misses(
            &machine,
            &regroup(store_tuples(&comm_bins), opt_shift, keys),
            keys,
            kernel.tuple_bytes(),
        );
        let normb = |x: u64| report::f2(x as f64 / pb_sw_m.max(1) as f64);
        tb.row(vec![
            ni.name.clone(),
            "1.00".into(),
            normb(phi_m),
            normb(cobra_m),
            normb(comm_m),
        ]);
        eprintln!("[done] {}", ni.name);
    }
    ta.print();
    ta.write_csv("fig14a_dram_traffic");
    tb.print();
    tb.write_csv("fig14b_l1_misses");
    println!(
        "\nShape check (paper Fig. 14): PHI and COBRA-COMM cut DRAM traffic on the\n\
         skewed graphs (DBP'/KRON'/HBUBL'), with COBRA-COMM matching PHI because\n\
         PHI coalesces mostly at the LLC; on low-reuse inputs (URND'/EURO') the\n\
         benefit vanishes. COBRA(-COMM) minimizes L1 misses via optimal bins;\n\
         PHI is stuck with PB-SW's compromise bin count."
    );
}
