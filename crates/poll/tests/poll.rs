//! Behavioral contract tests for `cobra-poll` over real sockets:
//! registration/deregistration, level-triggered re-arm, spurious-wakeup
//! tolerance, and typed (non-panicking) errors for bad descriptors.

use cobra_poll::{Event, Interest, PollError, Poller};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// A connected nonblocking socket pair via loopback.
fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let a = TcpStream::connect(addr).expect("connect");
    let (b, _) = listener.accept().expect("accept");
    a.set_nonblocking(true).expect("nonblocking a");
    b.set_nonblocking(true).expect("nonblocking b");
    (a, b)
}

fn wait_until(poller: &Poller, events: &mut Vec<Event>, pred: impl Fn(&Event) -> bool) -> bool {
    // Generous overall deadline, short rounds: spurious empty wakeups
    // between rounds are legal and must not fail the test.
    for _ in 0..200 {
        poller
            .wait(events, Some(Duration::from_millis(25)))
            .expect("wait");
        if events.iter().any(&pred) {
            return true;
        }
    }
    false
}

#[test]
fn register_reports_readable_and_deregister_silences() {
    let poller = Poller::new().expect("poller");
    let (mut a, b) = pair();
    poller.register(&b, 7, Interest::READ).expect("register");

    a.write_all(b"x").expect("write");
    let mut events = Vec::new();
    assert!(
        wait_until(&poller, &mut events, |ev| ev.token == 7 && ev.readable),
        "registered socket with pending data must report readable"
    );

    poller.deregister(&b).expect("deregister");
    // The byte is still unread, but the registration is gone: no more
    // events for this descriptor.
    poller
        .wait(&mut events, Some(Duration::from_millis(50)))
        .expect("wait after deregister");
    assert!(
        events.iter().all(|ev| ev.token != 7),
        "deregistered socket must not report events, got {events:?}"
    );
}

#[test]
fn level_triggered_rearms_until_data_is_consumed() {
    let poller = Poller::new().expect("poller");
    let (mut a, mut b) = pair();
    poller.register(&b, 3, Interest::READ).expect("register");

    a.write_all(b"abc").expect("write");
    let mut events = Vec::new();

    // Two waits in a row without reading: level triggering must report
    // readable both times (no re-arm call in between).
    for round in 0..2 {
        assert!(
            wait_until(&poller, &mut events, |ev| ev.token == 3 && ev.readable),
            "unconsumed data must stay readable (round {round})"
        );
    }

    // Drain the socket; readable must stop being reported.
    let mut buf = [0u8; 16];
    let n = b.read(&mut buf).expect("drain");
    assert_eq!(n, 3);
    poller
        .wait(&mut events, Some(Duration::from_millis(50)))
        .expect("wait after drain");
    assert!(
        !events.iter().any(|ev| ev.token == 3 && ev.readable),
        "drained socket must not report readable, got {events:?}"
    );
}

#[test]
fn interest_modify_switches_between_read_and_write() {
    let poller = Poller::new().expect("poller");
    let (mut a, b) = pair();

    // Write interest on an idle socket: immediately writable.
    poller.register(&b, 9, Interest::WRITE).expect("register");
    let mut events = Vec::new();
    assert!(
        wait_until(&poller, &mut events, |ev| ev.token == 9 && ev.writable),
        "idle socket with write interest must report writable"
    );

    // Swap to read-only interest: writable stops, readable appears once
    // the peer sends.
    poller.modify(&b, 9, Interest::READ).expect("modify");
    poller
        .wait(&mut events, Some(Duration::from_millis(50)))
        .expect("wait");
    assert!(
        !events.iter().any(|ev| ev.token == 9 && ev.writable),
        "write interest was dropped, got {events:?}"
    );
    a.write_all(b"y").expect("write");
    assert!(
        wait_until(&poller, &mut events, |ev| ev.token == 9 && ev.readable),
        "read interest must survive the modify"
    );
}

#[test]
fn empty_wait_is_a_legal_spurious_wakeup() {
    let poller = Poller::new().expect("poller");
    let (_a, b) = pair();
    poller.register(&b, 1, Interest::READ).expect("register");

    // Nothing pending: the wait times out with an empty batch and that
    // is Ok, not an error.
    let mut events = vec![Event {
        token: 99,
        readable: true,
        writable: true,
    }];
    poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .expect("empty wait must be Ok");
    assert!(
        events.is_empty(),
        "stale events must be cleared, got {events:?}"
    );
}

#[test]
fn peer_hangup_reports_readable_so_read_sees_eof() {
    let poller = Poller::new().expect("poller");
    let (a, mut b) = pair();
    poller.register(&b, 4, Interest::READ).expect("register");
    drop(a);

    let mut events = Vec::new();
    assert!(
        wait_until(&poller, &mut events, |ev| ev.token == 4 && ev.readable),
        "peer hangup must surface as readable"
    );
    let mut buf = [0u8; 8];
    assert_eq!(
        b.read(&mut buf).expect("read eof"),
        0,
        "read must observe EOF"
    );
}

#[test]
fn bad_descriptor_operations_return_typed_errors_not_panics() {
    let poller = Poller::new().expect("poller");
    let (_a, b) = pair();

    // Deregistering something never registered is NotRegistered.
    match poller.deregister(&b) {
        Err(PollError::NotRegistered) => {}
        other => panic!("expected NotRegistered, got {other:?}"),
    }

    // Double registration is AlreadyRegistered on epoll; kqueue treats
    // re-add as modify, so accept Ok there too — the contract is "no
    // panic, typed if it fails".
    poller.register(&b, 5, Interest::READ).expect("register");
    match poller.register(&b, 5, Interest::READ) {
        Ok(()) | Err(PollError::AlreadyRegistered) => {}
        other => panic!("expected Ok or AlreadyRegistered, got {other:?}"),
    }
}

#[test]
fn fd_exhaustion_maps_to_the_typed_variant() {
    // Driving the process to real EMFILE would destabilize the rest of
    // the suite; the classification path is exercised directly instead
    // (the backends all route raw os errors through the same mapping).
    let e: std::io::Error = PollError::FdExhausted.into();
    assert!(
        e.to_string().contains("exhausted"),
        "typed exhaustion must survive conversion to io::Error: {e}"
    );
}
