//! Quickstart: Propagation Blocking in three steps.
//!
//! Bins a stream of irregular updates, replays them with locality, and
//! shows the same computation running on the simulated COBRA machine.
//!
//! Run with: `cargo run --release --example quickstart`

use cobra_repro::cobra::{CobraMachine, PbBackend};
use cobra_repro::pb::Binner;
use cobra_repro::sim::MachineConfig;

fn main() {
    // ---- 1. Software Propagation Blocking (the cobra-pb library). ----
    // A histogram over a large key domain: direct increments would walk all
    // over `counts`; PB routes them through bins first.
    let num_keys = 1 << 20;
    let updates: Vec<u32> = (0..200_000u64)
        .map(|i| ((i * 2654435761) % num_keys as u64) as u32)
        .collect();

    let mut binner = Binner::<u32>::new(num_keys, 4096);
    for &k in &updates {
        binner.insert(k, 1);
    }
    let bins = binner.finish();
    println!(
        "binned {} updates into {} bins of {} keys each",
        bins.len(),
        bins.num_bins(),
        1u64 << bins.bin_shift()
    );

    // Accumulate: each bin touches one small, cache-resident key range.
    let mut counts = vec![0u32; num_keys as usize];
    bins.accumulate(|key, &v| counts[key as usize] += v);
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    assert_eq!(total, updates.len() as u64);
    println!("accumulate done; histogram total = {total}");

    // ---- 2. The same updates on the simulated COBRA machine. ----
    // One `binupdate` instruction per tuple; the cache hierarchy does the
    // binning (HPCA'22, Sections IV-V).
    let mut machine = CobraMachine::<u32>::with_defaults(
        MachineConfig::hpca22(),
        num_keys,
        8,
        updates.len() as u64,
    );
    for &k in &updates {
        machine.insert(k, 1);
    }
    let storage = machine.flush_and_take();
    println!(
        "COBRA routed {} tuples into {} in-memory bins (bin range {})",
        storage.len(),
        storage.num_bins(),
        1u64 << storage.bin_shift()
    );
    let result = machine.finish();
    println!(
        "simulated: {} instructions, {} cycles, {} bytes written to bins in DRAM",
        result.core.instructions, result.core.cycles, result.mem.dram_write_bytes
    );

    // The hardware-binned result matches the software-binned one.
    let mut hw_counts = vec![0u32; num_keys as usize];
    for b in 0..storage.num_bins() {
        for (key, &v) in storage.iter_bin(b) {
            hw_counts[key as usize] += v;
        }
    }
    assert_eq!(counts, hw_counts);
    println!("software and hardware binning agree ✓");
}
